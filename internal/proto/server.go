package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/otrace"
)

// RackResolver maps wire rack IDs to market rack indices.
type RackResolver func(id string) (int, bool)

// WirePolicy restricts which wire encodings the server accepts at hello.
// The default accepts both: the server always answers in whichever
// encoding the client opened with, so mixed fleets interoperate.
type WirePolicy int

// Wire acceptance policies (the operator's -wire flag).
const (
	// WireAny accepts JSON and binary clients alike (default).
	WireAny WirePolicy = iota
	// WireJSONOnly rejects binary clients.
	WireJSONOnly
	// WireBinaryOnly rejects JSON clients.
	WireBinaryOnly
)

// String names the policy (the -wire flag values).
func (p WirePolicy) String() string {
	switch p {
	case WireAny:
		return "any"
	case WireJSONOnly:
		return "json"
	case WireBinaryOnly:
		return "binary"
	default:
		return fmt.Sprintf("WirePolicy(%d)", int(p))
	}
}

// ParseWirePolicy parses an operator -wire flag value ("any", "json" or
// "binary").
func ParseWirePolicy(s string) (WirePolicy, error) {
	switch s {
	case "", "any":
		return WireAny, nil
	case "json":
		return WireJSONOnly, nil
	case "binary":
		return WireBinaryOnly, nil
	default:
		return 0, fmt.Errorf("%w: unknown wire policy %q (want any, json or binary)", ErrProtocol, s)
	}
}

// ServerOptions tunes the operator-side endpoint's robustness knobs. The
// zero value gives sensible production defaults.
type ServerOptions struct {
	// SessionTTL reaps a session that has sent nothing (bid or heartbeat)
	// for this long: a half-open connection must not block the tenant name
	// forever — the tenant simply has no spot capacity until it
	// reconnects (Section III-C). Default 60s.
	SessionTTL time.Duration
	// ReapInterval is how often expired sessions are swept. Default
	// SessionTTL/4.
	ReapInterval time.Duration
	// BidWindow bounds how far ahead of the market a bid may be: once the
	// loop has collected slot t, only bids for slots (t, t+BidWindow] are
	// accepted. Anything further out is rejected (it would sit in the bid
	// map unpruned), anything at or before t is rejected as stale (it
	// missed its market — the no-spot default applies). Default 16.
	BidWindow int
	// WriteTimeout bounds each outbound message write: a peer whose TCP
	// buffer stays full past the deadline fails the write and is dropped
	// to the no-spot default instead of blocking its writer goroutine
	// forever. Default 5s.
	WriteTimeout time.Duration
	// QueueDepth bounds each session's outbound queue (broadcasts, acks,
	// error replies). A session whose queue is full when the market tries
	// to enqueue is a slow consumer and is dropped — the Section III-C
	// no-spot default — so a single stalled peer costs the market loop one
	// failed enqueue, never a blocked slot. Default 32.
	QueueDepth int
	// Wire restricts the accepted wire encodings (default: accept both and
	// answer each client in the encoding it opened with).
	Wire WirePolicy
	// OwnerOf, if non-nil, names the tenant that owns a rack index. A hello
	// claiming a rack owned by a different tenant is rejected outright:
	// without this check any connected tenant could register (and bid spot
	// capacity for) another tenant's racks. An empty owner leaves the rack
	// unclaimed (any tenant may register it).
	OwnerOf func(rackIdx int) string
	// WrapConn, if non-nil, wraps every accepted connection — the
	// fault-injection hook (see FaultInjector.Wrap).
	WrapConn func(net.Conn) net.Conn
	// Metrics, if non-nil, receives protocol instrumentation (sessions,
	// bid acceptance/rejection, broadcast outcomes, outbound queueing).
	// Typically shared with the run's clients and fault injectors.
	Metrics *Metrics
	// Tracer, if non-nil, opens one send span per session under each
	// traced broadcast (BroadcastTraced), timing the enqueue-to-write
	// path of the fan-out. Wire the MarketLoop's tracer here. Nil is free.
	Tracer *otrace.Tracer
	// Logf, if non-nil, receives the server's diagnostics. The default is
	// silent: protocol noise (reaped sessions, broadcast failures) is
	// expected operation under churn, so it is surfaced via Metrics and
	// only narrated when a caller opts in (e.g. cmd/spotdc-operator -v).
	Logf func(format string, args ...interface{})
}

func (o *ServerOptions) setDefaults() {
	if o.SessionTTL <= 0 {
		o.SessionTTL = 60 * time.Second
	}
	if o.ReapInterval <= 0 {
		o.ReapInterval = o.SessionTTL / 4
	}
	if o.ReapInterval < time.Millisecond {
		o.ReapInterval = time.Millisecond
	}
	if o.BidWindow <= 0 {
		o.BidWindow = 16
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
}

// Server is the operator-side endpoint of Fig. 5: it accepts tenant
// sessions, collects their per-slot bids, and broadcasts clearing results.
// The market loop itself is driven externally (see operator/sim); the
// server only does transport and validation.
//
// Outbound traffic is fully asynchronous: every session owns a bounded
// queue drained by a writer goroutine, so Broadcast hands a slot off in
// O(sessions) cheap enqueues — independent of peer round-trip times — and
// a stalled peer is dropped by the slow-consumer policy instead of
// blocking the market loop.
type Server struct {
	ln      net.Listener
	resolve RackResolver
	opts    ServerOptions
	logf    func(format string, args ...interface{})
	met     *Metrics

	mu       sync.Mutex
	closed   bool
	sessions map[string]*session
	// bids[slot][tenant] holds validated bids awaiting collection.
	bids map[int]map[string][]core.Bid
	// taken is the most recent slot passed to TakeBids; bids are only
	// accepted inside (taken, taken+BidWindow]. Before the first take
	// (haveTaken false) any non-negative slot is accepted.
	taken     int
	haveTaken bool
	reaped    int // sessions expired by the reaper or evicted on re-hello

	// Broadcast scratch, guarded by bmu (one broadcast at a time): the
	// per-tenant grant grouping and the session snapshot are reused across
	// slots so a steady-state Broadcast performs zero heap allocations.
	bmu       sync.Mutex
	perTenant map[string]*[]Grant
	bTenants  []string
	sessSnap  []*session

	// free recycles grant buffers between broadcast producers and the
	// writer goroutines that release them after encoding. A plain mutexed
	// freelist rather than sync.Pool: GC never empties it, which keeps the
	// steady-state alloc budget at exactly zero.
	fmu  sync.Mutex
	free []*[]Grant

	wg   sync.WaitGroup
	stop chan struct{}
}

// queuedMsg is one pending outbound message. grants, when non-nil, is a
// pooled buffer owned by the queue entry; the writer returns it to the
// server freelist after encoding.
type queuedMsg struct {
	typ    MsgType
	slot   int
	price  float64
	grants *[]Grant
	detail string
	// trace is the preformatted traceparent field stamped onto the wire
	// message (formatted once per broadcast, not per session); parent is
	// the broadcast span's context that the per-session send span parents
	// under. Both zero when the broadcast is untraced.
	trace  string
	parent otrace.SpanContext
}

type session struct {
	tenant string
	racks  map[string]int // wire ID → rack index
	codec  Wire
	conn   net.Conn
	// lastSeen is the arrival time of the session's most recent message as
	// unix nanos; heartbeat floods update it without touching the server
	// mutex, so liveness refresh never contends with bid intake.
	lastSeen atomic.Int64

	// queue feeds the session's writer goroutine; qmu serializes enqueue
	// against the dropped transition so no message is enqueued after the
	// writer has been told to exit.
	queue   chan queuedMsg
	qmu     sync.Mutex
	dropped bool
	quit    chan struct{}
}

// touch refreshes the session's liveness timestamp (lock-free).
func (sess *session) touch() { sess.lastSeen.Store(time.Now().UnixNano()) }

// idleFor reports how long the session has been silent.
func (sess *session) idleFor(now time.Time) time.Duration {
	return time.Duration(now.UnixNano() - sess.lastSeen.Load())
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port) with
// default options.
func NewServer(addr string, resolve RackResolver) (*Server, error) {
	return NewServerOpts(addr, resolve, ServerOptions{})
}

// NewServerOpts listens on addr with explicit robustness options.
func NewServerOpts(addr string, resolve RackResolver, opts ServerOptions) (*Server, error) {
	if resolve == nil {
		return nil, errors.New("proto: nil rack resolver")
	}
	opts.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := newServerState(opts)
	s.ln = ln
	s.resolve = resolve
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reapLoop()
	return s, nil
}

// newServerState builds the listener-independent server core (benchmarks
// and alloc tests drive it with synthetic sessions, no TCP).
func newServerState(opts ServerOptions) *Server {
	opts.setDefaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {} // quiet by default; see ServerOptions.Logf
	}
	return &Server{
		opts:      opts,
		logf:      logf,
		met:       opts.Metrics,
		sessions:  make(map[string]*session),
		bids:      make(map[int]map[string][]core.Bid),
		perTenant: make(map[string]*[]Grant),
		stop:      make(chan struct{}),
	}
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...interface{})) {
	if f != nil {
		s.logf = f
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.opts.WrapConn != nil {
			conn = s.opts.WrapConn(conn)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// reapLoop periodically expires half-open sessions: a session whose last
// message is older than SessionTTL is closed and its tenant name freed, so
// a crashed-and-restarted tenant can re-hello instead of being locked out.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.ReapInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			s.reapExpired(now)
		}
	}
}

func (s *Server) reapExpired(now time.Time) {
	var expired []*session
	s.mu.Lock()
	for name, sess := range s.sessions {
		if sess.idleFor(now) > s.opts.SessionTTL {
			delete(s.sessions, name)
			s.reaped++
			s.met.sessionReaped()
			expired = append(expired, sess)
		}
	}
	s.met.setSessions(len(s.sessions))
	s.mu.Unlock()
	for _, sess := range expired {
		s.logf("proto: session %s expired (idle > %v), reaped", sess.tenant, s.opts.SessionTTL)
		s.dropSession(sess)
	}
}

// ReapedSessions returns how many sessions were expired or evicted.
func (s *Server) ReapedSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped
}

// negotiateCodec peeks the session's first byte to select its wire
// encoding: a binary frame opens with binMagic, JSON with '{'. The server
// answers in the same encoding for the life of the session.
func negotiateCodec(conn net.Conn) (Wire, error) {
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == binMagic {
		return newBinaryCodec(br, conn), nil
	}
	return newJSONCodec(br, conn), nil
}

// wireAllowed checks the negotiated encoding against the accept policy.
func (s *Server) wireAllowed(e Encoding) bool {
	switch s.opts.Wire {
	case WireJSONOnly:
		return e == WireJSON
	case WireBinaryOnly:
		return e == WireBinary
	default:
		return true
	}
}

func (s *Server) handle(conn net.Conn) {
	setConnDeadline(conn, deadline)
	codec, err := negotiateCodec(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	defer codec.Close()
	if !s.wireAllowed(codec.Encoding()) {
		_ = codec.Send(Message{Type: TypeError,
			Detail: fmt.Sprintf("wire encoding %s not accepted (server policy: %s)", codec.Encoding(), s.opts.Wire)})
		return
	}
	hello, err := codec.Recv()
	if err != nil || hello.Type != TypeHello || hello.Tenant == "" {
		_ = codec.Send(Message{Type: TypeError, Detail: "expected hello with tenant name"})
		return
	}
	sess := &session{
		tenant: hello.Tenant,
		racks:  make(map[string]int, len(hello.Racks)),
		codec:  codec,
		conn:   conn,
		queue:  make(chan queuedMsg, s.opts.QueueDepth),
		quit:   make(chan struct{}),
	}
	for _, id := range hello.Racks {
		idx, ok := s.resolve(id)
		if !ok {
			_ = codec.Send(Message{Type: TypeError, Detail: fmt.Sprintf("unknown rack %q", id)})
			return
		}
		if s.opts.OwnerOf != nil {
			if own := s.opts.OwnerOf(idx); own != "" && own != hello.Tenant {
				_ = codec.Send(Message{Type: TypeError, Detail: fmt.Sprintf("rack %q belongs to tenant %s", id, own)})
				return
			}
		}
		sess.racks[id] = idx
	}
	var evict *session
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if old, dup := s.sessions[hello.Tenant]; dup {
		// A live duplicate is rejected; an expired one is a half-open
		// leftover of a dead connection — evict it so the reconnecting
		// tenant is not locked out until the next reaper sweep.
		if old.idleFor(time.Now()) <= s.opts.SessionTTL {
			s.mu.Unlock()
			_ = codec.Send(Message{Type: TypeError, Detail: "tenant already connected"})
			return
		}
		delete(s.sessions, hello.Tenant)
		s.reaped++
		s.met.sessionReaped()
		evict = old
	}
	sess.touch()
	s.sessions[hello.Tenant] = sess
	s.met.sessionOpened()
	s.met.setSessions(len(s.sessions))
	s.mu.Unlock()
	if evict != nil {
		s.logf("proto: session %s expired, evicted by re-hello", hello.Tenant)
		s.dropSession(evict)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.writeLoop(sess)
	}()
	s.enqueue(sess, queuedMsg{typ: TypeHeartBeat})

	defer func() {
		s.dropSession(sess)
		s.mu.Lock()
		// Only remove the entry if it is still ours: a reaper eviction
		// followed by a re-hello may have installed a fresh session under
		// the same tenant name.
		if s.sessions[hello.Tenant] == sess {
			delete(s.sessions, hello.Tenant)
		}
		s.met.setSessions(len(s.sessions))
		s.mu.Unlock()
	}()
	for {
		setConnDeadline(conn, 10*deadline)
		msg, err := codec.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("proto: session %s: %v", hello.Tenant, err)
			}
			return
		}
		sess.touch()
		switch msg.Type {
		case TypeHeartBeat:
			s.enqueue(sess, queuedMsg{typ: TypeHeartBeat, slot: msg.Slot})
		case TypeBid:
			if err := s.acceptBids(sess, msg); err != nil {
				s.enqueue(sess, queuedMsg{typ: TypeError, slot: msg.Slot, detail: err.Error()})
			}
		default:
			s.enqueue(sess, queuedMsg{typ: TypeError, detail: fmt.Sprintf("unexpected %q", msg.Type)})
		}
	}
}

// dropSession tears a session's transport down: the writer goroutine is
// told to exit, the connection is closed (unblocking both the reader loop
// and any in-flight write), and no further messages can be enqueued. It is
// idempotent and safe from any goroutine; the Section III-C contract is
// that the dropped tenant simply has no spot capacity until it reconnects.
func (s *Server) dropSession(sess *session) {
	sess.qmu.Lock()
	if sess.dropped {
		sess.qmu.Unlock()
		return
	}
	sess.dropped = true
	sess.qmu.Unlock()
	close(sess.quit)
	_ = sess.codec.Close()
}

// enqueue hands one outbound message to the session's writer. It never
// blocks: a full queue means the peer is not draining fast enough — the
// slow-consumer policy drops the whole session to the no-spot default
// rather than letting it stall the market loop.
func (s *Server) enqueue(sess *session, qm queuedMsg) bool {
	sess.qmu.Lock()
	if sess.dropped {
		sess.qmu.Unlock()
		s.recycle(qm.grants)
		return false
	}
	select {
	case sess.queue <- qm:
		sess.qmu.Unlock()
		s.met.queueDepth(+1)
		return true
	default:
		sess.qmu.Unlock()
		s.recycle(qm.grants)
		s.met.outboundDropped(dropQueueFull)
		if qm.typ == TypePrice || qm.typ == TypeBudgetReset {
			s.met.broadcast(false)
		}
		s.logf("proto: session %s outbound queue full, dropping slow consumer", sess.tenant)
		s.dropSession(sess)
		return false
	}
}

// writeLoop drains one session's outbound queue, applying the write
// deadline to every message. A failed or expired write drops the session;
// the reader loop then observes the closed connection and cleans up.
func (s *Server) writeLoop(sess *session) {
	for {
		select {
		case qm := <-sess.queue:
			s.met.queueDepth(-1)
			if err := s.writeOne(sess, qm); err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					s.met.sendDeadlineExpired()
				}
				if qm.typ == TypePrice || qm.typ == TypeBudgetReset {
					s.logf("proto: broadcast to %s failed: %v", sess.tenant, err)
				}
				s.met.outboundDropped(dropWriteError)
				s.dropSession(sess)
			}
		case <-sess.quit:
			// Final drain: release pooled buffers and settle the depth
			// gauge. enqueue cannot add more once dropped is set.
			for {
				select {
				case qm := <-sess.queue:
					s.met.queueDepth(-1)
					s.recycle(qm.grants)
				default:
					return
				}
			}
		}
	}
}

// writeOne encodes and sends one queued message, recycling its grant
// buffer and recording the broadcast outcome.
func (s *Server) writeOne(sess *session, qm queuedMsg) error {
	msg := Message{Type: qm.typ, Slot: qm.slot, Price: qm.price, Detail: qm.detail, Trace: qm.trace}
	if qm.typ != TypeError {
		msg.Tenant = sess.tenant
	}
	if qm.grants != nil {
		msg.Grants = *qm.grants
	}
	// The send span runs on the writer goroutine, possibly after the
	// slot's root span already ended; StartRemote follows the trace's
	// recorded sampling decision, so stragglers still land correctly.
	var sp *otrace.Span
	if s.opts.Tracer != nil && qm.parent.Valid() {
		sp = s.opts.Tracer.StartRemote("send", qm.slot, qm.parent)
		sp.SetStr("tenant", sess.tenant)
		sp.SetStr("type", string(qm.typ))
	}
	if sess.conn != nil {
		_ = sess.conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	err := sess.codec.Send(msg)
	if err != nil {
		sp.SetStr("error", err.Error())
	}
	sp.End()
	s.recycle(qm.grants)
	if qm.typ == TypePrice || qm.typ == TypeBudgetReset {
		s.met.broadcast(err == nil)
		if err == nil {
			s.met.broadcastEncoded(sess.codec.Encoding())
		}
	}
	return err
}

// grantBuf fetches a pooled grant slice (length 0).
func (s *Server) grantBuf() *[]Grant {
	s.fmu.Lock()
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		s.fmu.Unlock()
		*p = (*p)[:0]
		return p
	}
	s.fmu.Unlock()
	return new([]Grant)
}

// recycle returns a grant buffer to the freelist (nil is a no-op).
func (s *Server) recycle(p *[]Grant) {
	if p == nil {
		return
	}
	s.fmu.Lock()
	s.free = append(s.free, p)
	s.fmu.Unlock()
}

// snapshotSessions refills the reusable broadcast session snapshot.
// Callers must hold bmu.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	s.sessSnap = s.sessSnap[:0]
	for _, sess := range s.sessions {
		s.sessSnap = append(s.sessSnap, sess)
	}
	s.mu.Unlock()
	return s.sessSnap
}

// Broadcast sends the clearing price and each tenant's own grants for the
// slot. rackID maps market indices back to wire IDs. The send itself is
// asynchronous per session (bounded queue + writer goroutine), so the call
// costs one enqueue per session regardless of peer round-trip times.
// Tenants whose queue is full or whose connection fails are dropped (they
// fall back to no spot capacity).
func (s *Server) Broadcast(slot int, price float64, allocs []core.Allocation, rackID func(int) string) {
	s.BroadcastTraced(slot, price, allocs, rackID, nil)
}

// BroadcastTraced is Broadcast carrying the slot's trace: parent is the
// loop's broadcast span. Each price message is stamped with the slot
// trace's traceparent field (formatted once here) so tenants adopt the
// operator's trace, and each session's write gets a send span. A nil
// parent — or a server without a tracer — degrades to plain Broadcast.
func (s *Server) BroadcastTraced(slot int, price float64, allocs []core.Allocation, rackID func(int) string, parent *otrace.Span) {
	tp, ctx := s.traceFields(parent)
	s.bmu.Lock()
	defer s.bmu.Unlock()
	// Group grants by tenant into pooled buffers. Map entries persist
	// across slots holding nil between broadcasts, so the steady-state
	// grouping allocates nothing.
	for _, a := range allocs {
		p := s.perTenant[a.Tenant]
		if p == nil {
			p = s.grantBuf()
			s.perTenant[a.Tenant] = p
			s.bTenants = append(s.bTenants, a.Tenant)
		}
		*p = append(*p, Grant{Rack: rackID(a.Rack), Watts: a.Watts})
	}
	for _, sess := range s.snapshotSessions() {
		var gb *[]Grant
		if p := s.perTenant[sess.tenant]; p != nil {
			gb = p
			s.perTenant[sess.tenant] = nil
		}
		s.enqueue(sess, queuedMsg{typ: TypePrice, slot: slot, price: price, grants: gb, trace: tp, parent: ctx})
	}
	// Grants for tenants with no live session are released unsent.
	for _, t := range s.bTenants {
		if p := s.perTenant[t]; p != nil {
			s.recycle(p)
			s.perTenant[t] = nil
		}
	}
	s.bTenants = s.bTenants[:0]
}

// BroadcastBudgetReset pushes emergency budget resets to the tenants that
// own the affected racks: each session receives one budget_reset message
// carrying only its own racks' new budgets (watts), routed through the
// rack registrations from its hello. Sessions owning none of the reset
// racks receive nothing; like price broadcasts the sends are asynchronous,
// and a failed session falls back to the operator-side rack PDU budget,
// which still enforces the cap.
func (s *Server) BroadcastBudgetReset(slot int, budgets map[int]float64) {
	s.BroadcastBudgetResetTraced(slot, budgets, nil)
}

// BroadcastBudgetResetTraced is BroadcastBudgetReset under the slot's
// broadcast span (see BroadcastTraced).
func (s *Server) BroadcastBudgetResetTraced(slot int, budgets map[int]float64, parent *otrace.Span) {
	if len(budgets) == 0 {
		return
	}
	tp, ctx := s.traceFields(parent)
	s.bmu.Lock()
	defer s.bmu.Unlock()
	for _, sess := range s.snapshotSessions() {
		var gb *[]Grant
		// sess.racks is written only during the hello handshake, before the
		// session is published, so reading it here is race-free.
		for wireID, idx := range sess.racks {
			if watts, ok := budgets[idx]; ok {
				if gb == nil {
					gb = s.grantBuf()
				}
				*gb = append(*gb, Grant{Rack: wireID, Watts: watts})
			}
		}
		if gb == nil {
			continue
		}
		s.enqueue(sess, queuedMsg{typ: TypeBudgetReset, slot: slot, grants: gb, trace: tp, parent: ctx})
	}
}

// traceFields derives the queued-message trace fields from a broadcast
// span: the preformatted traceparent (one allocation per broadcast, not
// per session) and the parent context for send spans.
func (s *Server) traceFields(parent *otrace.Span) (string, otrace.SpanContext) {
	if s.opts.Tracer == nil || parent == nil {
		return "", otrace.SpanContext{}
	}
	ctx := parent.Context()
	return otrace.FormatTraceparent(ctx), ctx
}

func (s *Server) acceptBids(sess *session, msg Message) error {
	if msg.Slot < 0 {
		s.met.bidRejected(rejectSlot)
		return fmt.Errorf("bid for negative slot %d", msg.Slot)
	}
	converted := make([]core.Bid, 0, len(msg.Bids))
	seen := make(map[int]bool, len(msg.Bids))
	for _, rb := range msg.Bids {
		idx, ok := sess.racks[rb.Rack]
		if !ok {
			s.met.bidRejected(rejectRack)
			return fmt.Errorf("rack %q not registered for tenant %s", rb.Rack, sess.tenant)
		}
		// One demand function per rack per slot (Eqn. 5): a duplicate inside
		// one message is ambiguous, so the whole message is rejected rather
		// than silently keeping either copy.
		if seen[idx] {
			s.met.bidRejected(rejectInvalid)
			return fmt.Errorf("duplicate bid for rack %q in slot %d message", rb.Rack, msg.Slot)
		}
		seen[idx] = true
		lb := core.LinearBid{DMax: rb.DMax, DMin: rb.DMin, QMin: rb.QMin, QMax: rb.QMax}
		if err := lb.Validate(); err != nil {
			s.met.bidRejected(rejectInvalid)
			return err
		}
		converted = append(converted, core.Bid{Rack: idx, Tenant: sess.tenant, Fn: lb})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Window enforcement (once the market position is known): a stale bid
	// missed its market — the no-spot default applies — and a far-future
	// bid would sit in the bid map unpruned, an unbounded-growth vector.
	if s.haveTaken {
		// At-or-before the market position is stale: slot s.taken has already
		// been drained by TakeBids, so a late bid for it would sit in the bid
		// map until pruned — and a reconnecting tenant re-submitting for the
		// in-flight slot could otherwise double-enter the next drain.
		if msg.Slot <= s.taken {
			s.met.bidRejected(rejectStale)
			return fmt.Errorf("stale bid for slot %d (market is at slot %d; no spot capacity applies)", msg.Slot, s.taken)
		}
		if msg.Slot > s.taken+s.opts.BidWindow {
			s.met.bidRejected(rejectWindow)
			return fmt.Errorf("bid for slot %d outside window (accepting slots %d..%d)",
				msg.Slot, s.taken+1, s.taken+s.opts.BidWindow)
		}
	}
	slotBids := s.bids[msg.Slot]
	if slotBids == nil {
		slotBids = make(map[string][]core.Bid)
		s.bids[msg.Slot] = slotBids
	}
	// A re-submitted bid replaces the tenant's earlier one for the slot.
	slotBids[sess.tenant] = converted
	s.met.bidAccepted()
	return nil
}

// TakeBids drains and returns every bid submitted for the slot, drops any
// stale bids for earlier slots (they missed their market — the no-spot
// default applies), and prunes anything beyond the acceptance window (only
// possible if the window was reconfigured). It also advances the market
// position used to window future bids.
func (s *Server) TakeBids(slot int) []core.Bid {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveTaken || slot > s.taken {
		s.taken = slot
		s.haveTaken = true
	}
	var out []core.Bid
	for sl, byTenant := range s.bids {
		switch {
		case sl == slot:
			for _, bs := range byTenant {
				out = append(out, bs...)
			}
			delete(s.bids, sl)
		case sl < slot, sl > s.taken+s.opts.BidWindow:
			delete(s.bids, sl)
		}
	}
	// Canonical rack order, not map-iteration order: clearing, journaling,
	// and the durable slot commit all fold in bid order, so two runs that
	// collected the same bids must hand them to the market identically —
	// crash recovery's bit-identity depends on it. Rack indices are unique
	// across the drained set (one demand function per rack per slot).
	sort.Slice(out, func(i, j int) bool { return out[i].Rack < out[j].Rack })
	return out
}

// MarketPosition returns the most recent slot handed to TakeBids and
// whether any slot has been taken yet — the durable half of the bid
// acceptance window.
func (s *Server) MarketPosition() (slot int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken, s.haveTaken
}

// RestoreMarketPosition moves the bid acceptance window to a recovered
// slot: bids at or before it are rejected as stale, so tenants reconnecting
// after an operator restart land in the correct slot instead of bidding
// into history. The position only moves forward.
func (s *Server) RestoreMarketPosition(slot int) {
	if slot < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveTaken || slot > s.taken {
		s.taken = slot
		s.haveTaken = true
	}
}

// BufferedBids returns how many bids are currently buffered for the slot
// without draining them or advancing the market position (an observability
// hook; callers that want the bids must still TakeBids exactly once).
func (s *Server) BufferedBids(slot int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, bs := range s.bids[slot] {
		n += len(bs)
	}
	return n
}

// PendingBidSlots returns how many future slots currently hold buffered
// bids (a growth observability hook; bounded by BidWindow).
func (s *Server) PendingBidSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bids)
}

// Sessions returns the names of currently connected tenants, sorted — map
// iteration order must never leak into logs or tests.
func (s *Server) Sessions() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Close shuts the listener and all sessions down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	close(s.stop)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, sess := range sessions {
		s.dropSession(sess)
	}
	s.wg.Wait()
	return err
}
