package proto

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"spotdc/internal/core"
)

// RackResolver maps wire rack IDs to market rack indices.
type RackResolver func(id string) (int, bool)

// Server is the operator-side endpoint of Fig. 5: it accepts tenant
// sessions, collects their per-slot bids, and broadcasts clearing results.
// The market loop itself is driven externally (see operator/sim); the
// server only does transport and validation.
type Server struct {
	ln      net.Listener
	resolve RackResolver
	logf    func(format string, args ...interface{})

	mu       sync.Mutex
	closed   bool
	sessions map[string]*session
	// bids[slot][tenant] holds validated bids awaiting collection.
	bids map[int]map[string][]core.Bid
	wg   sync.WaitGroup
}

type session struct {
	tenant string
	racks  map[string]int // wire ID → rack index
	codec  *Codec
	sendMu sync.Mutex
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewServer(addr string, resolve RackResolver) (*Server, error) {
	if resolve == nil {
		return nil, errors.New("proto: nil rack resolver")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:       ln,
		resolve:  resolve,
		logf:     log.Printf,
		sessions: make(map[string]*session),
		bids:     make(map[int]map[string][]core.Bid),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...interface{})) {
	if f != nil {
		s.logf = f
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	codec := NewCodec(conn)
	defer codec.Close()
	setConnDeadline(conn, deadline)
	hello, err := codec.Recv()
	if err != nil || hello.Type != TypeHello || hello.Tenant == "" {
		_ = codec.Send(Message{Type: TypeError, Detail: "expected hello with tenant name"})
		return
	}
	sess := &session{tenant: hello.Tenant, racks: make(map[string]int, len(hello.Racks)), codec: codec}
	for _, id := range hello.Racks {
		idx, ok := s.resolve(id)
		if !ok {
			_ = codec.Send(Message{Type: TypeError, Detail: fmt.Sprintf("unknown rack %q", id)})
			return
		}
		sess.racks[id] = idx
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.sessions[hello.Tenant]; dup {
		s.mu.Unlock()
		_ = codec.Send(Message{Type: TypeError, Detail: "tenant already connected"})
		return
	}
	s.sessions[hello.Tenant] = sess
	s.mu.Unlock()
	_ = sess.send(Message{Type: TypeHeartBeat, Tenant: hello.Tenant})

	defer func() {
		s.mu.Lock()
		delete(s.sessions, hello.Tenant)
		s.mu.Unlock()
	}()
	for {
		setConnDeadline(conn, 10*deadline)
		msg, err := codec.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("proto: session %s: %v", hello.Tenant, err)
			}
			return
		}
		switch msg.Type {
		case TypeHeartBeat:
			_ = sess.send(Message{Type: TypeHeartBeat, Tenant: hello.Tenant, Slot: msg.Slot})
		case TypeBid:
			if err := s.acceptBids(sess, msg); err != nil {
				_ = sess.send(Message{Type: TypeError, Slot: msg.Slot, Detail: err.Error()})
			}
		default:
			_ = sess.send(Message{Type: TypeError, Detail: fmt.Sprintf("unexpected %q", msg.Type)})
		}
	}
}

func (sess *session) send(m Message) error {
	sess.sendMu.Lock()
	defer sess.sendMu.Unlock()
	return sess.codec.Send(m)
}

func (s *Server) acceptBids(sess *session, msg Message) error {
	converted := make([]core.Bid, 0, len(msg.Bids))
	for _, rb := range msg.Bids {
		idx, ok := sess.racks[rb.Rack]
		if !ok {
			return fmt.Errorf("rack %q not registered for tenant %s", rb.Rack, sess.tenant)
		}
		lb := core.LinearBid{DMax: rb.DMax, DMin: rb.DMin, QMin: rb.QMin, QMax: rb.QMax}
		if err := lb.Validate(); err != nil {
			return err
		}
		converted = append(converted, core.Bid{Rack: idx, Tenant: sess.tenant, Fn: lb})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slotBids := s.bids[msg.Slot]
	if slotBids == nil {
		slotBids = make(map[string][]core.Bid)
		s.bids[msg.Slot] = slotBids
	}
	// A re-submitted bid replaces the tenant's earlier one for the slot.
	slotBids[sess.tenant] = converted
	return nil
}

// TakeBids drains and returns every bid submitted for the slot, and drops
// any stale bids for earlier slots (they missed their market — the no-spot
// default applies).
func (s *Server) TakeBids(slot int) []core.Bid {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []core.Bid
	for sl, byTenant := range s.bids {
		if sl > slot {
			continue
		}
		if sl == slot {
			for _, bs := range byTenant {
				out = append(out, bs...)
			}
		}
		delete(s.bids, sl)
	}
	return out
}

// Broadcast sends the clearing price and each tenant's own grants for the
// slot. rackID maps market indices back to wire IDs. Tenants whose
// connection fails are skipped (they fall back to no spot capacity).
func (s *Server) Broadcast(slot int, price float64, allocs []core.Allocation, rackID func(int) string) {
	perTenant := make(map[string][]Grant)
	for _, a := range allocs {
		perTenant[a.Tenant] = append(perTenant[a.Tenant], Grant{Rack: rackID(a.Rack), Watts: a.Watts})
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		msg := Message{Type: TypePrice, Tenant: sess.tenant, Slot: slot, Price: price, Grants: perTenant[sess.tenant]}
		if err := sess.send(msg); err != nil {
			s.logf("proto: broadcast to %s failed: %v", sess.tenant, err)
		}
	}
}

// Sessions returns the names of currently connected tenants.
func (s *Server) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	return out
}

// Close shuts the listener and all sessions down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		_ = sess.codec.Close()
	}
	s.wg.Wait()
	return err
}
