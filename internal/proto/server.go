package proto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"spotdc/internal/core"
)

// RackResolver maps wire rack IDs to market rack indices.
type RackResolver func(id string) (int, bool)

// ServerOptions tunes the operator-side endpoint's robustness knobs. The
// zero value gives sensible production defaults.
type ServerOptions struct {
	// SessionTTL reaps a session that has sent nothing (bid or heartbeat)
	// for this long: a half-open connection must not block the tenant name
	// forever — the tenant simply has no spot capacity until it
	// reconnects (Section III-C). Default 60s.
	SessionTTL time.Duration
	// ReapInterval is how often expired sessions are swept. Default
	// SessionTTL/4.
	ReapInterval time.Duration
	// BidWindow bounds how far ahead of the market a bid may be: once the
	// loop has collected slot t, only bids for slots (t, t+BidWindow] are
	// accepted. Anything further out is rejected (it would sit in the bid
	// map unpruned), anything at or before t is rejected as stale (it
	// missed its market — the no-spot default applies). Default 16.
	BidWindow int
	// OwnerOf, if non-nil, names the tenant that owns a rack index. A hello
	// claiming a rack owned by a different tenant is rejected outright:
	// without this check any connected tenant could register (and bid spot
	// capacity for) another tenant's racks. An empty owner leaves the rack
	// unclaimed (any tenant may register it).
	OwnerOf func(rackIdx int) string
	// WrapConn, if non-nil, wraps every accepted connection — the
	// fault-injection hook (see FaultInjector.Wrap).
	WrapConn func(net.Conn) net.Conn
	// Metrics, if non-nil, receives protocol instrumentation (sessions,
	// bid acceptance/rejection, broadcast outcomes). Typically shared with
	// the run's clients and fault injectors.
	Metrics *Metrics
	// Logf, if non-nil, receives the server's diagnostics. The default is
	// silent: protocol noise (reaped sessions, broadcast failures) is
	// expected operation under churn, so it is surfaced via Metrics and
	// only narrated when a caller opts in (e.g. cmd/spotdc-operator -v).
	Logf func(format string, args ...interface{})
}

func (o *ServerOptions) setDefaults() {
	if o.SessionTTL <= 0 {
		o.SessionTTL = 60 * time.Second
	}
	if o.ReapInterval <= 0 {
		o.ReapInterval = o.SessionTTL / 4
	}
	if o.ReapInterval < time.Millisecond {
		o.ReapInterval = time.Millisecond
	}
	if o.BidWindow <= 0 {
		o.BidWindow = 16
	}
}

// Server is the operator-side endpoint of Fig. 5: it accepts tenant
// sessions, collects their per-slot bids, and broadcasts clearing results.
// The market loop itself is driven externally (see operator/sim); the
// server only does transport and validation.
type Server struct {
	ln      net.Listener
	resolve RackResolver
	opts    ServerOptions
	logf    func(format string, args ...interface{})
	met     *Metrics

	mu       sync.Mutex
	closed   bool
	sessions map[string]*session
	// bids[slot][tenant] holds validated bids awaiting collection.
	bids map[int]map[string][]core.Bid
	// taken is the most recent slot passed to TakeBids; bids are only
	// accepted inside (taken, taken+BidWindow]. Before the first take
	// (haveTaken false) any non-negative slot is accepted.
	taken     int
	haveTaken bool
	reaped    int // sessions expired by the reaper or evicted on re-hello

	wg   sync.WaitGroup
	stop chan struct{}
}

type session struct {
	tenant string
	racks  map[string]int // wire ID → rack index
	codec  *Codec
	sendMu sync.Mutex
	// lastSeen is the arrival time of the session's most recent message,
	// guarded by the server mutex; the reaper expires sessions on it.
	lastSeen time.Time
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port) with
// default options.
func NewServer(addr string, resolve RackResolver) (*Server, error) {
	return NewServerOpts(addr, resolve, ServerOptions{})
}

// NewServerOpts listens on addr with explicit robustness options.
func NewServerOpts(addr string, resolve RackResolver, opts ServerOptions) (*Server, error) {
	if resolve == nil {
		return nil, errors.New("proto: nil rack resolver")
	}
	opts.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {} // quiet by default; see ServerOptions.Logf
	}
	s := &Server{
		ln:       ln,
		resolve:  resolve,
		opts:     opts,
		logf:     logf,
		met:      opts.Metrics,
		sessions: make(map[string]*session),
		bids:     make(map[int]map[string][]core.Bid),
		stop:     make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reapLoop()
	return s, nil
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...interface{})) {
	if f != nil {
		s.logf = f
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.opts.WrapConn != nil {
			conn = s.opts.WrapConn(conn)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// reapLoop periodically expires half-open sessions: a session whose last
// message is older than SessionTTL is closed and its tenant name freed, so
// a crashed-and-restarted tenant can re-hello instead of being locked out.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.ReapInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			s.reapExpired(now)
		}
	}
}

func (s *Server) reapExpired(now time.Time) {
	var expired []*session
	s.mu.Lock()
	for name, sess := range s.sessions {
		if now.Sub(sess.lastSeen) > s.opts.SessionTTL {
			delete(s.sessions, name)
			s.reaped++
			s.met.sessionReaped()
			expired = append(expired, sess)
		}
	}
	s.met.setSessions(len(s.sessions))
	s.mu.Unlock()
	for _, sess := range expired {
		s.logf("proto: session %s expired (idle > %v), reaped", sess.tenant, s.opts.SessionTTL)
		_ = sess.codec.Close()
	}
}

// ReapedSessions returns how many sessions were expired or evicted.
func (s *Server) ReapedSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped
}

func (s *Server) handle(conn net.Conn) {
	codec := NewCodec(conn)
	defer codec.Close()
	setConnDeadline(conn, deadline)
	hello, err := codec.Recv()
	if err != nil || hello.Type != TypeHello || hello.Tenant == "" {
		_ = codec.Send(Message{Type: TypeError, Detail: "expected hello with tenant name"})
		return
	}
	sess := &session{tenant: hello.Tenant, racks: make(map[string]int, len(hello.Racks)), codec: codec}
	for _, id := range hello.Racks {
		idx, ok := s.resolve(id)
		if !ok {
			_ = codec.Send(Message{Type: TypeError, Detail: fmt.Sprintf("unknown rack %q", id)})
			return
		}
		if s.opts.OwnerOf != nil {
			if own := s.opts.OwnerOf(idx); own != "" && own != hello.Tenant {
				_ = codec.Send(Message{Type: TypeError, Detail: fmt.Sprintf("rack %q belongs to tenant %s", id, own)})
				return
			}
		}
		sess.racks[id] = idx
	}
	var evict *session
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if old, dup := s.sessions[hello.Tenant]; dup {
		// A live duplicate is rejected; an expired one is a half-open
		// leftover of a dead connection — evict it so the reconnecting
		// tenant is not locked out until the next reaper sweep.
		if time.Since(old.lastSeen) <= s.opts.SessionTTL {
			s.mu.Unlock()
			_ = codec.Send(Message{Type: TypeError, Detail: "tenant already connected"})
			return
		}
		delete(s.sessions, hello.Tenant)
		s.reaped++
		s.met.sessionReaped()
		evict = old
	}
	sess.lastSeen = time.Now()
	s.sessions[hello.Tenant] = sess
	s.met.sessionOpened()
	s.met.setSessions(len(s.sessions))
	s.mu.Unlock()
	if evict != nil {
		s.logf("proto: session %s expired, evicted by re-hello", hello.Tenant)
		_ = evict.codec.Close()
	}
	_ = sess.send(Message{Type: TypeHeartBeat, Tenant: hello.Tenant})

	defer func() {
		s.mu.Lock()
		// Only remove the entry if it is still ours: a reaper eviction
		// followed by a re-hello may have installed a fresh session under
		// the same tenant name.
		if s.sessions[hello.Tenant] == sess {
			delete(s.sessions, hello.Tenant)
		}
		s.met.setSessions(len(s.sessions))
		s.mu.Unlock()
	}()
	for {
		setConnDeadline(conn, 10*deadline)
		msg, err := codec.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("proto: session %s: %v", hello.Tenant, err)
			}
			return
		}
		s.touch(sess)
		switch msg.Type {
		case TypeHeartBeat:
			_ = sess.send(Message{Type: TypeHeartBeat, Tenant: hello.Tenant, Slot: msg.Slot})
		case TypeBid:
			if err := s.acceptBids(sess, msg); err != nil {
				_ = sess.send(Message{Type: TypeError, Slot: msg.Slot, Detail: err.Error()})
			}
		default:
			_ = sess.send(Message{Type: TypeError, Detail: fmt.Sprintf("unexpected %q", msg.Type)})
		}
	}
}

// touch refreshes the session's liveness timestamp.
func (s *Server) touch(sess *session) {
	s.mu.Lock()
	sess.lastSeen = time.Now()
	s.mu.Unlock()
}

func (sess *session) send(m Message) error {
	sess.sendMu.Lock()
	defer sess.sendMu.Unlock()
	return sess.codec.Send(m)
}

func (s *Server) acceptBids(sess *session, msg Message) error {
	if msg.Slot < 0 {
		s.met.bidRejected(rejectSlot)
		return fmt.Errorf("bid for negative slot %d", msg.Slot)
	}
	converted := make([]core.Bid, 0, len(msg.Bids))
	seen := make(map[int]bool, len(msg.Bids))
	for _, rb := range msg.Bids {
		idx, ok := sess.racks[rb.Rack]
		if !ok {
			s.met.bidRejected(rejectRack)
			return fmt.Errorf("rack %q not registered for tenant %s", rb.Rack, sess.tenant)
		}
		// One demand function per rack per slot (Eqn. 5): a duplicate inside
		// one message is ambiguous, so the whole message is rejected rather
		// than silently keeping either copy.
		if seen[idx] {
			s.met.bidRejected(rejectInvalid)
			return fmt.Errorf("duplicate bid for rack %q in slot %d message", rb.Rack, msg.Slot)
		}
		seen[idx] = true
		lb := core.LinearBid{DMax: rb.DMax, DMin: rb.DMin, QMin: rb.QMin, QMax: rb.QMax}
		if err := lb.Validate(); err != nil {
			s.met.bidRejected(rejectInvalid)
			return err
		}
		converted = append(converted, core.Bid{Rack: idx, Tenant: sess.tenant, Fn: lb})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Window enforcement (once the market position is known): a stale bid
	// missed its market — the no-spot default applies — and a far-future
	// bid would sit in the bid map unpruned, an unbounded-growth vector.
	if s.haveTaken {
		// At-or-before the market position is stale: slot s.taken has already
		// been drained by TakeBids, so a late bid for it would sit in the bid
		// map until pruned — and a reconnecting tenant re-submitting for the
		// in-flight slot could otherwise double-enter the next drain.
		if msg.Slot <= s.taken {
			s.met.bidRejected(rejectStale)
			return fmt.Errorf("stale bid for slot %d (market is at slot %d; no spot capacity applies)", msg.Slot, s.taken)
		}
		if msg.Slot > s.taken+s.opts.BidWindow {
			s.met.bidRejected(rejectWindow)
			return fmt.Errorf("bid for slot %d outside window (accepting slots %d..%d)",
				msg.Slot, s.taken+1, s.taken+s.opts.BidWindow)
		}
	}
	slotBids := s.bids[msg.Slot]
	if slotBids == nil {
		slotBids = make(map[string][]core.Bid)
		s.bids[msg.Slot] = slotBids
	}
	// A re-submitted bid replaces the tenant's earlier one for the slot.
	slotBids[sess.tenant] = converted
	s.met.bidAccepted()
	return nil
}

// TakeBids drains and returns every bid submitted for the slot, drops any
// stale bids for earlier slots (they missed their market — the no-spot
// default applies), and prunes anything beyond the acceptance window (only
// possible if the window was reconfigured). It also advances the market
// position used to window future bids.
func (s *Server) TakeBids(slot int) []core.Bid {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveTaken || slot > s.taken {
		s.taken = slot
		s.haveTaken = true
	}
	var out []core.Bid
	for sl, byTenant := range s.bids {
		switch {
		case sl == slot:
			for _, bs := range byTenant {
				out = append(out, bs...)
			}
			delete(s.bids, sl)
		case sl < slot, sl > s.taken+s.opts.BidWindow:
			delete(s.bids, sl)
		}
	}
	return out
}

// BufferedBids returns how many bids are currently buffered for the slot
// without draining them or advancing the market position (an observability
// hook; callers that want the bids must still TakeBids exactly once).
func (s *Server) BufferedBids(slot int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, bs := range s.bids[slot] {
		n += len(bs)
	}
	return n
}

// PendingBidSlots returns how many future slots currently hold buffered
// bids (a growth observability hook; bounded by BidWindow).
func (s *Server) PendingBidSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bids)
}

// Broadcast sends the clearing price and each tenant's own grants for the
// slot. rackID maps market indices back to wire IDs. Tenants whose
// connection fails are skipped (they fall back to no spot capacity).
func (s *Server) Broadcast(slot int, price float64, allocs []core.Allocation, rackID func(int) string) {
	perTenant := make(map[string][]Grant)
	for _, a := range allocs {
		perTenant[a.Tenant] = append(perTenant[a.Tenant], Grant{Rack: rackID(a.Rack), Watts: a.Watts})
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		msg := Message{Type: TypePrice, Tenant: sess.tenant, Slot: slot, Price: price, Grants: perTenant[sess.tenant]}
		if err := sess.send(msg); err != nil {
			s.met.broadcast(false)
			s.logf("proto: broadcast to %s failed: %v", sess.tenant, err)
		} else {
			s.met.broadcast(true)
		}
	}
}

// BroadcastBudgetReset pushes emergency budget resets to the tenants that
// own the affected racks: each session receives one budget_reset message
// carrying only its own racks' new budgets (watts), routed through the
// rack registrations from its hello. Sessions owning none of the reset
// racks receive nothing; send failures are skipped exactly like price
// broadcasts — the operator-side rack PDU budget still enforces the cap.
func (s *Server) BroadcastBudgetReset(slot int, budgets map[int]float64) {
	if len(budgets) == 0 {
		return
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		var grants []Grant
		// sess.racks is written only during the hello handshake, before the
		// session is published, so reading it here is race-free.
		for wireID, idx := range sess.racks {
			if watts, ok := budgets[idx]; ok {
				grants = append(grants, Grant{Rack: wireID, Watts: watts})
			}
		}
		if len(grants) == 0 {
			continue
		}
		msg := Message{Type: TypeBudgetReset, Tenant: sess.tenant, Slot: slot, Grants: grants}
		if err := sess.send(msg); err != nil {
			s.met.broadcast(false)
			s.logf("proto: budget reset to %s failed: %v", sess.tenant, err)
		} else {
			s.met.broadcast(true)
		}
	}
}

// Sessions returns the names of currently connected tenants.
func (s *Server) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	return out
}

// Close shuts the listener and all sessions down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	close(s.stop)
	err := s.ln.Close()
	for _, sess := range sessions {
		_ = sess.codec.Close()
	}
	s.wg.Wait()
	return err
}
