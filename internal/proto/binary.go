package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Binary wire framing (DESIGN §4g). Every message is one frame:
//
//	[0] magic     0xBF — distinguishes a binary hello from JSON's '{'
//	[1] version   0x01 or 0x02
//	[2] type      message type code (binHello..binError)
//	[3:6] length  24-bit big-endian payload length (≤ MaxLineBytes)
//	[6:]  payload
//
// The payload always opens with the envelope fields every message carries —
// tenant (string) and slot (int64); version-2 frames append the trace
// field (string, "" when absent) to the envelope — followed by a
// type-specific body:
//
//	hello         u16 rack count, then rack IDs (strings)
//	heartbeat     (empty)
//	bid           u16 bid count, then per bid: rack ID, DMax, QMin, DMin,
//	              QMax (float64s, struct order)
//	price         price (float64), u32 grant count, then per grant: rack
//	              ID, watts (float64)
//	budget_reset  u32 grant count, then grants as in price
//	error         detail (string)
//
// Scalars are big-endian; float64s are IEEE-754 bits; strings are a u16
// length followed by raw bytes. Everything is length-checked against the
// frame, so a truncated or hostile frame decodes to ErrProtocol, never a
// panic or an over-allocation.
// Version negotiation (DESIGN §4i): version 1 is the historical framing;
// version 2 adds the trace envelope field. A codec starts at version 1
// and upgrades stickily — the tenant client enables v2 when a tracer is
// configured, and the server-side codec upgrades when it receives its
// first v2 frame, answering in kind for the rest of the session. A v1
// peer therefore never sees a v2 frame it did not ask for, so old
// clients (and old servers talking to untraced clients) interoperate
// unchanged.
const (
	binMagic        = 0xBF
	binVersion      = 1
	binVersionTrace = 2

	binFrameHeader = 6
)

// Binary message type codes (frame header byte 2).
const (
	binHello = iota + 1
	binHeartBeat
	binBid
	binPrice
	binBudgetReset
	binError
)

// binTypeCode maps a wire MsgType to its frame code (0 = unencodable).
func binTypeCode(t MsgType) byte {
	switch t {
	case TypeHello:
		return binHello
	case TypeHeartBeat:
		return binHeartBeat
	case TypeBid:
		return binBid
	case TypePrice:
		return binPrice
	case TypeBudgetReset:
		return binBudgetReset
	case TypeError:
		return binError
	default:
		return 0
	}
}

// binTypeOf maps a frame code back to the wire MsgType ("" = unknown).
func binTypeOf(code byte) MsgType {
	switch code {
	case binHello:
		return TypeHello
	case binHeartBeat:
		return TypeHeartBeat
	case binBid:
		return TypeBid
	case binPrice:
		return TypePrice
	case binBudgetReset:
		return TypeBudgetReset
	case binError:
		return TypeError
	default:
		return ""
	}
}

// maxInterned bounds the decoder's string intern table; rack IDs and tenant
// names are a small fixed vocabulary per session, so the cap only matters
// against a hostile peer streaming unique strings to grow the table.
const maxInterned = 1 << 12

// BinaryCodec reads and writes length-prefixed binary frames on a stream.
// It is the throughput path of the protocol: one buffered write per Send,
// and per-codec scratch (encode buffer, decode buffer, slice buffers, a
// string intern table) keeps both directions allocation-free in steady
// state. Recv's contract is the Wire one: returned slices and strings may
// reference codec scratch reused by the next Recv.
type BinaryCodec struct {
	r *bufio.Reader
	w io.Writer
	c io.Closer

	// v2 flips the codec to version-2 frames (trace envelope field).
	// Atomic because a server session's reader goroutine upgrades it on
	// the first v2 Recv while the writer goroutine reads it in Send.
	v2 atomic.Bool

	enc []byte // encode scratch; one frame appended then written whole
	dec []byte // decode scratch; holds the current frame's payload

	// hdr and rd live on the codec, not the stack: both have their address
	// taken inside Recv (ReadFull, the payload walker), which would escape
	// a local to the heap and cost one allocation per message.
	hdr [binFrameHeader]byte
	rd  binReader

	// Decode slice scratch, reused across Recv calls.
	racks  []string
	bids   []RackBid
	grants []Grant
	// names interns decoded strings so steady-state Recv of a known
	// vocabulary (tenant names, rack IDs) does not allocate.
	names map[string]string
}

// NewBinaryCodec wraps a connection with the binary framing.
func NewBinaryCodec(rw io.ReadWriteCloser) *BinaryCodec {
	return newBinaryCodec(bufio.NewReader(rw), rw)
}

// newBinaryCodec builds the codec over an explicit buffered reader (shared
// with the server's encoding-negotiation peek).
func newBinaryCodec(r *bufio.Reader, wc io.WriteCloser) *BinaryCodec {
	return &BinaryCodec{
		r:     r,
		w:     wc,
		c:     wc,
		names: make(map[string]string, 64),
	}
}

// Encoding identifies the codec as the binary wire encoding.
func (c *BinaryCodec) Encoding() Encoding { return WireBinary }

// EnableTrace switches the codec to version-2 frames, which carry the
// Message.Trace envelope field. The tenant client calls it when a tracer
// is configured; the peer must understand v2 (an old server rejects the
// hello), so untraced clients stay on v1 and interoperate everywhere.
func (c *BinaryCodec) EnableTrace() { c.v2.Store(true) }

// Close closes the underlying stream.
func (c *BinaryCodec) Close() error { return c.c.Close() }

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendStr(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return b, fmt.Errorf("%w: string field of %d bytes", ErrProtocol, len(s))
	}
	return append(appendU16(b, uint16(len(s))), s...), nil
}

// Send writes one message as a single frame with one underlying write.
func (c *BinaryCodec) Send(m Message) error {
	code := binTypeCode(m.Type)
	if code == 0 {
		return fmt.Errorf("%w: message type %q has no binary encoding", ErrProtocol, m.Type)
	}
	ver := byte(binVersion)
	if c.v2.Load() {
		ver = binVersionTrace
	}
	b := append(c.enc[:0], binMagic, ver, code, 0, 0, 0)
	var err error
	if b, err = appendStr(b, m.Tenant); err != nil {
		return err
	}
	b = appendU64(b, uint64(int64(m.Slot)))
	if ver >= binVersionTrace {
		if b, err = appendStr(b, m.Trace); err != nil {
			return err
		}
	}
	switch m.Type {
	case TypeHello:
		if len(m.Racks) > math.MaxUint16 {
			return fmt.Errorf("%w: %d racks in hello", ErrProtocol, len(m.Racks))
		}
		b = appendU16(b, uint16(len(m.Racks)))
		for _, r := range m.Racks {
			if b, err = appendStr(b, r); err != nil {
				return err
			}
		}
	case TypeHeartBeat:
	case TypeBid:
		if len(m.Bids) > math.MaxUint16 {
			return fmt.Errorf("%w: %d bids in one message", ErrProtocol, len(m.Bids))
		}
		b = appendU16(b, uint16(len(m.Bids)))
		for _, rb := range m.Bids {
			if b, err = appendStr(b, rb.Rack); err != nil {
				return err
			}
			b = appendF64(b, rb.DMax)
			b = appendF64(b, rb.QMin)
			b = appendF64(b, rb.DMin)
			b = appendF64(b, rb.QMax)
		}
	case TypePrice:
		b = appendF64(b, m.Price)
		if b, err = appendGrants(b, m.Grants); err != nil {
			return err
		}
	case TypeBudgetReset:
		if b, err = appendGrants(b, m.Grants); err != nil {
			return err
		}
	case TypeError:
		if b, err = appendStr(b, m.Detail); err != nil {
			return err
		}
	}
	n := len(b) - binFrameHeader
	if n > MaxLineBytes {
		return fmt.Errorf("%w: %d-byte frame exceeds %d", ErrProtocol, n, MaxLineBytes)
	}
	b[3], b[4], b[5] = byte(n>>16), byte(n>>8), byte(n)
	c.enc = b // keep the grown scratch
	_, err = c.w.Write(b)
	return err
}

func appendGrants(b []byte, grants []Grant) ([]byte, error) {
	if len(grants) > math.MaxUint32 {
		return b, fmt.Errorf("%w: %d grants in one message", ErrProtocol, len(grants))
	}
	b = appendU32(b, uint32(len(grants)))
	var err error
	for _, g := range grants {
		if b, err = appendStr(b, g.Rack); err != nil {
			return b, err
		}
		b = appendF64(b, g.Watts)
	}
	return b, nil
}

// binReader walks one frame's payload with bounds checking.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) need(n int) error {
	if len(r.b)-r.off < n {
		return fmt.Errorf("%w: truncated binary frame", ErrProtocol)
	}
	return nil
}

func (r *binReader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *binReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// str decodes one string, interned through the codec's table so repeated
// vocabulary (tenant names, rack IDs) costs no allocation in steady state.
func (r *binReader) str(c *BinaryCodec) (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	raw := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	// The compiler elides the []byte→string conversion in a map index, so
	// a hit is allocation-free.
	if s, ok := c.names[string(raw)]; ok {
		return s, nil
	}
	s := string(raw)
	if len(c.names) < maxInterned {
		c.names[s] = s
	}
	return s, nil
}

// rawStr decodes one string without interning — for fields whose values
// never repeat (trace contexts), where interning would only grow the
// table toward its cap.
func (r *binReader) rawStr() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Recv reads one frame. io.EOF signals a clean close before a frame starts;
// a partial frame is an ErrUnexpectedEOF. Returned slices reference codec
// scratch valid until the next Recv.
func (c *BinaryCodec) Recv() (Message, error) {
	hdr := &c.hdr
	if _, err := io.ReadFull(c.r, hdr[:1]); err != nil {
		return Message{}, err
	}
	if hdr[0] != binMagic {
		return Message{}, fmt.Errorf("%w: bad frame magic 0x%02X", ErrProtocol, hdr[0])
	}
	if _, err := io.ReadFull(c.r, hdr[1:]); err != nil {
		return Message{}, noEOF(err)
	}
	if hdr[1] != binVersion && hdr[1] != binVersionTrace {
		return Message{}, fmt.Errorf("%w: unsupported binary wire version %d", ErrProtocol, hdr[1])
	}
	if hdr[1] == binVersionTrace && !c.v2.Load() {
		// Sticky answer-in-kind upgrade: a peer that speaks v2 gets v2
		// back for the rest of the session (never downgraded).
		c.v2.Store(true)
	}
	typ := binTypeOf(hdr[2])
	if typ == "" {
		return Message{}, fmt.Errorf("%w: unknown binary message code %d", ErrProtocol, hdr[2])
	}
	n := int(hdr[3])<<16 | int(hdr[4])<<8 | int(hdr[5])
	if n > MaxLineBytes {
		return Message{}, fmt.Errorf("%w: %d-byte frame exceeds %d", ErrProtocol, n, MaxLineBytes)
	}
	if cap(c.dec) < n {
		c.dec = make([]byte, n)
	}
	c.dec = c.dec[:n]
	if _, err := io.ReadFull(c.r, c.dec); err != nil {
		return Message{}, noEOF(err)
	}
	c.rd = binReader{b: c.dec}
	r := &c.rd
	m := Message{Type: typ}
	var err error
	if m.Tenant, err = r.str(c); err != nil {
		return Message{}, err
	}
	slot, err := r.u64()
	if err != nil {
		return Message{}, err
	}
	m.Slot = int(int64(slot))
	if hdr[1] >= binVersionTrace {
		// Trace fields are per-slot unique, so interning them would churn
		// the vocabulary table; read raw instead.
		if m.Trace, err = r.rawStr(); err != nil {
			return Message{}, err
		}
	}
	switch typ {
	case TypeHello:
		cnt, err := r.u16()
		if err != nil {
			return Message{}, err
		}
		c.racks = c.racks[:0]
		for i := 0; i < int(cnt); i++ {
			s, err := r.str(c)
			if err != nil {
				return Message{}, err
			}
			c.racks = append(c.racks, s)
		}
		if cnt > 0 {
			m.Racks = c.racks
		}
	case TypeHeartBeat:
	case TypeBid:
		cnt, err := r.u16()
		if err != nil {
			return Message{}, err
		}
		// Each bid is at least 2+4×8 bytes; reject counts the frame cannot
		// hold before allocating anything proportional to them.
		if err := r.need(int(cnt) * (2 + 4*8)); err != nil {
			return Message{}, err
		}
		c.bids = c.bids[:0]
		for i := 0; i < int(cnt); i++ {
			var rb RackBid
			if rb.Rack, err = r.str(c); err != nil {
				return Message{}, err
			}
			if rb.DMax, err = r.f64(); err != nil {
				return Message{}, err
			}
			if rb.QMin, err = r.f64(); err != nil {
				return Message{}, err
			}
			if rb.DMin, err = r.f64(); err != nil {
				return Message{}, err
			}
			if rb.QMax, err = r.f64(); err != nil {
				return Message{}, err
			}
			c.bids = append(c.bids, rb)
		}
		if cnt > 0 {
			m.Bids = c.bids
		}
	case TypePrice:
		if m.Price, err = r.f64(); err != nil {
			return Message{}, err
		}
		if m.Grants, err = c.readGrants(r); err != nil {
			return Message{}, err
		}
	case TypeBudgetReset:
		if m.Grants, err = c.readGrants(r); err != nil {
			return Message{}, err
		}
	case TypeError:
		if m.Detail, err = r.str(c); err != nil {
			return Message{}, err
		}
	}
	if r.off != len(r.b) {
		return Message{}, fmt.Errorf("%w: %d trailing bytes in %s frame", ErrProtocol, len(r.b)-r.off, typ)
	}
	return m, nil
}

func (c *BinaryCodec) readGrants(r *binReader) ([]Grant, error) {
	cnt, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(cnt) * (2 + 8)); err != nil {
		return nil, err
	}
	c.grants = c.grants[:0]
	for i := 0; i < int(cnt); i++ {
		var g Grant
		if g.Rack, err = r.str(c); err != nil {
			return nil, err
		}
		if g.Watts, err = r.f64(); err != nil {
			return nil, err
		}
		c.grants = append(c.grants, g)
	}
	if len(c.grants) == 0 {
		return nil, nil
	}
	return c.grants, nil
}

// noEOF maps a mid-frame EOF to ErrUnexpectedEOF: only an EOF on a frame
// boundary is a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
