package proto

import (
	"errors"
	"testing"
	"time"
)

// newServerOpts builds a test server with explicit robustness options.
func newServerOpts(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	s, err := NewServerOpts("127.0.0.1:0", testResolver(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silentLogf)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSessionReapFreesTenantName(t *testing.T) {
	s := newServerOpts(t, ServerOptions{SessionTTL: 80 * time.Millisecond, ReapInterval: 20 * time.Millisecond})
	c1, err := Dial(s.Addr(), "phoenix", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	waitSessions(t, s, 1)

	// The client goes silent (half-open from the server's view). The
	// reaper must expire the session and free the name.
	deadlineAt := time.Now().Add(2 * time.Second)
	for len(s.Sessions()) != 0 {
		if time.Now().After(deadlineAt) {
			t.Fatalf("idle session never reaped: %v", s.Sessions())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.ReapedSessions() == 0 {
		t.Error("reap counter not incremented")
	}
	// The tenant name is reusable.
	c2, err := Dial(s.Addr(), "phoenix", []string{"S-2"})
	if err != nil {
		t.Fatalf("re-dial after reap: %v", err)
	}
	defer c2.Close()
	waitSessions(t, s, 1)
}

func TestExpiredSessionEvictedByReHello(t *testing.T) {
	// Long reap interval: the sweep won't fire, so eviction must happen
	// on the duplicate hello itself.
	s := newServerOpts(t, ServerOptions{SessionTTL: 60 * time.Millisecond, ReapInterval: 10 * time.Second})
	c1, err := Dial(s.Addr(), "dup", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	waitSessions(t, s, 1)
	time.Sleep(150 * time.Millisecond) // c1 is now expired but unswept

	c2, err := Dial(s.Addr(), "dup", []string{"S-2"})
	if err != nil {
		t.Fatalf("re-hello over expired session rejected: %v", err)
	}
	defer c2.Close()
	if s.ReapedSessions() == 0 {
		t.Error("eviction not counted")
	}
}

func TestLiveDuplicateStillRejected(t *testing.T) {
	s := newServerOpts(t, ServerOptions{SessionTTL: 10 * time.Second})
	c1, err := Dial(s.Addr(), "dup", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	waitSessions(t, s, 1)
	if _, err := Dial(s.Addr(), "dup", []string{"S-2"}); err == nil {
		t.Fatal("live duplicate accepted")
	}
}

func TestBidWindowRejectsFarFutureAndStale(t *testing.T) {
	s := newServerOpts(t, ServerOptions{BidWindow: 4})
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bid := []RackBid{{Rack: "S-1", DMax: 20, QMin: 0.05, DMin: 5, QMax: 0.2}}
	// Before the first collection any non-negative slot is accepted.
	if err := c.SubmitBids(3, bid); err != nil {
		t.Fatal(err)
	}
	if got := awaitBids(t, s, 3, 1); len(got) != 1 {
		t.Fatalf("pre-window bid not collected: %d", len(got))
	}

	// The market is now at slot 3. A far-future bid must be rejected —
	// previously it would sit in the bid map forever (unbounded growth).
	if err := c.SubmitBids(1000, bid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AwaitPrice(1000, time.Second); !errors.Is(err, ErrProtocol) {
		t.Errorf("far-future bid not rejected: %v", err)
	}
	if n := s.PendingBidSlots(); n != 0 {
		t.Errorf("rejected bid left %d buffered slots", n)
	}

	// A stale bid (before the market position) is rejected too.
	if err := c.SubmitBids(2, bid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AwaitPrice(2, time.Second); !errors.Is(err, ErrProtocol) {
		t.Errorf("stale bid not rejected: %v", err)
	}

	// Bids within the window are accepted.
	if err := c.SubmitBids(6, bid); err != nil {
		t.Fatal(err)
	}
	if got := awaitBids(t, s, 6, 1); len(got) != 1 {
		t.Fatalf("in-window bid not collected: %d", len(got))
	}
}

func TestTakeBidsPrunesBeyondWindow(t *testing.T) {
	// If the window shrinks (reconfiguration), TakeBids prunes buffered
	// slots beyond it instead of leaking them.
	s := newServerOpts(t, ServerOptions{BidWindow: 8})
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bid := []RackBid{{Rack: "S-1", DMax: 20, QMin: 0.05, DMin: 5, QMax: 0.2}}
	for slot := 1; slot <= 6; slot++ {
		if err := c.SubmitBids(slot, bid); err != nil {
			t.Fatal(err)
		}
	}
	awaitBids(t, s, 1, 1)
	// Wait for the remaining five submissions to land (same connection,
	// processed in order, but asynchronously to this goroutine).
	deadlineAt := time.Now().Add(2 * time.Second)
	for s.PendingBidSlots() != 5 {
		if time.Now().After(deadlineAt) {
			t.Fatalf("buffered slots = %d, want 5", s.PendingBidSlots())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	s.opts.BidWindow = 2 // simulate a tightened window
	s.mu.Unlock()
	got := s.TakeBids(2)
	if len(got) != 1 {
		t.Fatalf("slot 2 bids = %d", len(got))
	}
	// Slots 3,4 remain (within 2..4); 5,6 pruned.
	if n := s.PendingBidSlots(); n != 2 {
		t.Errorf("buffered slots = %d, want 2 (beyond-window pruned)", n)
	}
}

func TestAwaitPriceSkipsStaleSlotErrors(t *testing.T) {
	// A late rejection of a previous slot's bid must not abort the wait
	// for the current slot's price (the doc-comment contract).
	s := newServerOpts(t, ServerOptions{BidWindow: 4})
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)
	bid := []RackBid{{Rack: "S-1", DMax: 20, QMin: 0.05, DMin: 5, QMax: 0.2}}
	if err := c.SubmitBids(4, bid); err != nil {
		t.Fatal(err)
	}
	awaitBids(t, s, 4, 1) // market now at slot 4
	// A stale bid for slot 1 provokes an error reply tagged slot 1.
	if err := c.SubmitBids(1, bid); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the rejection land first
	s.Broadcast(5, 0.3, nil, func(int) string { return "" })
	price, _, err := c.AwaitPrice(5, 2*time.Second)
	if err != nil {
		t.Fatalf("stale-slot error aborted the wait: %v", err)
	}
	if price != 0.3 {
		t.Errorf("price = %v", price)
	}
}

func TestClientReconnectResumesSession(t *testing.T) {
	// The server reaps the idle session (simulating a half-open drop);
	// the client's next await hits the closed connection, reconnects with
	// backoff, re-registers its racks, and the session resumes.
	s := newServerOpts(t, ServerOptions{SessionTTL: 80 * time.Millisecond, ReapInterval: 20 * time.Millisecond})
	var attempts []error
	c, err := DialOpts(s.Addr(), "tenant-a", []string{"S-1"}, ClientOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		MaxAttempts: 30,
		Seed:        9,
		OnReconnect: func(attempt int, err error) { attempts = append(attempts, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)

	// Go silent until the server reaps us.
	deadlineAt := time.Now().Add(2 * time.Second)
	for len(s.Sessions()) != 0 {
		if time.Now().After(deadlineAt) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Await a price: the dead connection must trigger a reconnect.
	got := make(chan error, 1)
	go func() {
		price, _, err := c.AwaitPrice(7, 3*time.Second)
		if err == nil && price != 0.42 {
			err = errors.New("wrong price")
		}
		got <- err
	}()
	waitSessions(t, s, 1) // the re-hello re-registers the tenant
	s.Broadcast(7, 0.42, nil, func(int) string { return "" })
	if err := <-got; err != nil {
		t.Fatalf("await across reconnect: %v", err)
	}
	if c.Reconnects() == 0 {
		t.Error("reconnect not counted")
	}
	if len(attempts) == 0 {
		t.Error("OnReconnect never observed an attempt")
	}

	// Bidding resumes on the restored session.
	if err := c.SubmitBids(8, []RackBid{{Rack: "S-1", DMax: 20, QMin: 0.05, DMin: 5, QMax: 0.2}}); err != nil {
		t.Fatal(err)
	}
	if got := awaitBids(t, s, 8, 1); len(got) != 1 {
		t.Fatalf("post-reconnect bid not collected: %d", len(got))
	}
}

func TestReconnectDisabledFailsFast(t *testing.T) {
	s := newServerOpts(t, ServerOptions{SessionTTL: 60 * time.Millisecond, ReapInterval: 15 * time.Millisecond})
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)
	deadlineAt := time.Now().Add(2 * time.Second)
	for len(s.Sessions()) != 0 {
		if time.Now().After(deadlineAt) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Without Reconnect the await reports the loss (no-spot default or a
	// hard error) instead of silently redialing.
	if _, _, err := c.AwaitPrice(1, 300*time.Millisecond); err == nil {
		t.Error("await on dead session succeeded without reconnect")
	}
	if c.Reconnects() != 0 {
		t.Error("reconnect happened despite being disabled")
	}
}
