package proto

import (
	"fmt"
	"testing"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/operator"
	"spotdc/internal/power"
)

func TestSlotClock(t *testing.T) {
	epoch := time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)
	c, err := NewSlotClock(epoch, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSlotClock(epoch, 0); err == nil {
		t.Error("zero slot length accepted")
	}
	if c.SlotLen() != 2*time.Minute {
		t.Errorf("SlotLen = %v", c.SlotLen())
	}
	cases := []struct {
		at   time.Time
		want int
	}{
		{epoch, 0},
		{epoch.Add(119 * time.Second), 0},
		{epoch.Add(2 * time.Minute), 1},
		{epoch.Add(5 * time.Minute), 2},
		{epoch.Add(-1 * time.Second), -1},
		{epoch.Add(-2 * time.Minute), -1},
		{epoch.Add(-121 * time.Second), -2},
	}
	for _, tc := range cases {
		if got := c.SlotAt(tc.at); got != tc.want {
			t.Errorf("SlotAt(%v) = %d, want %d", tc.at.Sub(epoch), got, tc.want)
		}
	}
	if got := c.StartOf(3); !got.Equal(epoch.Add(6 * time.Minute)) {
		t.Errorf("StartOf(3) = %v", got)
	}
	if !c.BidDeadline(3).Equal(c.StartOf(3)) {
		t.Error("bid deadline should be the slot start (Fig. 6)")
	}
	// Round trip: every slot start maps to its own index.
	for s := -3; s <= 3; s++ {
		if got := c.SlotAt(c.StartOf(s)); got != s {
			t.Errorf("SlotAt(StartOf(%d)) = %d", s, got)
		}
	}
}

func loopFixture(t *testing.T) (*Server, *operator.Operator, *power.Topology) {
	t.Helper()
	topo, err := power.NewTopology(1370,
		[]power.PDU{{ID: "PDU#1", Capacity: 715}},
		[]power.Rack{
			{ID: "S-1", Tenant: "sprint", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "opp", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
		})
	if err != nil {
		t.Fatal(err)
	}
	op, err := operator.New(operator.Config{
		Topology:      topo,
		MarketOptions: core.Options{PriceStep: 0.001, Ration: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", func(id string) (int, bool) { return topo.RackByID(id) })
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(silentLogf)
	t.Cleanup(func() { srv.Close() })
	return srv, op, topo
}

func TestMarketLoopValidation(t *testing.T) {
	srv, op, topo := loopFixture(t)
	clock, err := NewSlotClock(time.Now(), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	full := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading: func(int) power.Reading {
			return power.Reading{RackWatts: []float64{120, 100}, OtherPDUWatts: []float64{180}}
		},
		RackID: func(r int) string { return topo.Racks[r].ID },
	}
	broken := []func(*MarketLoop){
		func(l *MarketLoop) { l.Server = nil },
		func(l *MarketLoop) { l.Operator = nil },
		func(l *MarketLoop) { l.Clock = nil },
		func(l *MarketLoop) { l.Reading = nil },
		func(l *MarketLoop) { l.RackID = nil },
	}
	for i, b := range broken {
		l := full
		b(&l)
		if _, err := l.RunSlots(0, 1); err == nil {
			t.Errorf("broken loop %d accepted", i)
		}
	}
	if _, err := full.RunSlots(0, 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestMarketLoopEndToEnd(t *testing.T) {
	srv, op, topo := loopFixture(t)
	// Millisecond-scale slots so the test runs fast; the epoch is slightly
	// in the future so slot 0's bids beat the deadline.
	clock, err := NewSlotClock(time.Now().Add(150*time.Millisecond), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	type slotRec struct {
		bids  int
		sold  float64
		price float64
	}
	recs := make(chan slotRec, 16)
	loop := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading: func(int) power.Reading {
			return power.Reading{RackWatts: []float64{120, 100}, OtherPDUWatts: []float64{180}}
		},
		RackID: func(r int) string { return topo.Racks[r].ID },
		OnSlot: func(slot int, out operator.SlotOutcome, bids int) {
			recs <- slotRec{bids: bids, sold: out.Result.TotalWatts, price: out.Result.Price}
		},
	}

	client, err := Dial(srv.Addr(), "opp", []string{"O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Submit bids for the first three slots ahead of their deadlines.
	for slot := 0; slot < 3; slot++ {
		if err := client.SubmitBids(slot, []RackBid{
			{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 6, QMax: 0.16},
		}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := loop.RunSlots(0, 3)
		done <- err
	}()

	for slot := 0; slot < 3; slot++ {
		price, grants, err := client.AwaitPrice(slot, 2*time.Second)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if price <= 0 {
			t.Errorf("slot %d price = %v", slot, price)
		}
		total := 0.0
		for _, g := range grants {
			total += g.Watts
		}
		if total <= 0 {
			t.Errorf("slot %d granted nothing", slot)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(recs)
	n := 0
	for r := range recs {
		n++
		if r.bids != 1 || r.sold <= 0 {
			t.Errorf("slot record: %+v", r)
		}
	}
	if n != 3 {
		t.Errorf("OnSlot fired %d times, want 3", n)
	}
	if op.SpotRevenue() <= 0 {
		t.Error("loop earned nothing")
	}
}

// Twenty concurrent tenants hammer a fast market loop; run under -race
// this exercises the server's locking end to end.
func TestMarketLoopManyTenantsStress(t *testing.T) {
	topoRacks := make([]power.Rack, 20)
	for i := range topoRacks {
		topoRacks[i] = power.Rack{
			ID: fmt.Sprintf("r%d", i), Tenant: fmt.Sprintf("t%d", i),
			PDU: i / 10, Guaranteed: 125, SpotHeadroom: 60,
		}
	}
	topo, err := power.NewTopology(7000,
		[]power.PDU{{ID: "P1", Capacity: 3500}, {ID: "P2", Capacity: 3500}}, topoRacks)
	if err != nil {
		t.Fatal(err)
	}
	op, err := operator.New(operator.Config{
		Topology:      topo,
		MarketOptions: core.Options{PriceStep: 0.002, Ration: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", func(id string) (int, bool) { return topo.RackByID(id) })
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(silentLogf)
	defer srv.Close()

	clock, err := NewSlotClock(time.Now().Add(300*time.Millisecond), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reading := power.Reading{RackWatts: make([]float64, 20), OtherPDUWatts: []float64{500, 500}}
	for i := range reading.RackWatts {
		reading.RackWatts[i] = 100
	}
	loop := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading:  func(int) power.Reading { return reading },
		RackID:   func(r int) string { return topo.Racks[r].ID },
	}
	const slots = 4
	done := make(chan error, 1)
	go func() {
		_, err := loop.RunSlots(0, slots)
		done <- err
	}()

	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			rack := fmt.Sprintf("r%d", i)
			c, err := Dial(srv.Addr(), fmt.Sprintf("t%d", i), []string{rack})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for slot := 0; slot < slots; slot++ {
				if err := c.SubmitBids(slot, []RackBid{{Rack: rack, DMax: 40, QMin: 0.02, DMin: 4, QMax: 0.16}}); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.AwaitPrice(slot, 3*time.Second); err != nil {
					errs <- fmt.Errorf("tenant %d slot %d: %w", i, slot, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if op.SpotRevenue() <= 0 {
		t.Error("stress loop earned nothing")
	}
}
