package proto

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"spotdc/internal/power"
)

// degradeFixture builds a loop whose reading is poisoned (NaN) for the
// slots in bad, forcing Operator.RunSlot to fail there.
func degradeFixture(t *testing.T, bad map[int]bool) (*MarketLoop, *Server) {
	t.Helper()
	srv, op, topo := loopFixture(t)
	clock, err := NewSlotClock(time.Now().Add(100*time.Millisecond), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	good := power.Reading{RackWatts: []float64{120, 100}, OtherPDUWatts: []float64{180}}
	poison := power.Reading{RackWatts: []float64{math.NaN(), 100}, OtherPDUWatts: []float64{180}}
	loop := &MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading: func(slot int) power.Reading {
			if bad[slot] {
				return poison
			}
			return good
		},
		RackID: func(r int) string { return topo.Racks[r].ID },
	}
	return loop, srv
}

func TestRunSlotsDegradesInsteadOfAborting(t *testing.T) {
	loop, srv := degradeFixture(t, map[int]bool{1: true, 2: true})
	var mu sync.Mutex
	var slotErrs []int
	loop.OnSlotError = func(slot int, err error) {
		mu.Lock()
		slotErrs = append(slotErrs, slot)
		mu.Unlock()
		if err == nil {
			t.Error("OnSlotError with nil error")
		}
	}

	client, err := Dial(srv.Addr(), "opp", []string{"O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for slot := 0; slot < 5; slot++ {
		if err := client.SubmitBids(slot, []RackBid{
			{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 6, QMax: 0.16},
		}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var cleared int
	var runErr error
	go func() {
		cleared, runErr = loop.RunSlots(0, 5)
		close(done)
	}()

	// Every slot gets a broadcast: real prices on good slots, an explicit
	// zero-price no-grant broadcast on degraded ones (the Section III-C
	// no-spot default).
	for slot := 0; slot < 5; slot++ {
		price, grants, err := client.AwaitPrice(slot, 2*time.Second)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if slot == 1 || slot == 2 {
			if price != 0 || len(grants) != 0 {
				t.Errorf("degraded slot %d: price %v grants %v, want zero/none", slot, price, grants)
			}
		} else if price <= 0 {
			t.Errorf("good slot %d: price %v", slot, price)
		}
	}
	<-done
	if runErr != nil {
		t.Fatalf("RunSlots errored instead of degrading: %v", runErr)
	}
	if cleared != 3 {
		t.Errorf("cleared = %d, want 3", cleared)
	}
	if loop.SlotErrors() != 2 {
		t.Errorf("SlotErrors = %d, want 2", loop.SlotErrors())
	}
	if loop.BreakerTripped() {
		t.Error("breaker tripped without being configured")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slotErrs) != 2 || slotErrs[0] != 1 || slotErrs[1] != 2 {
		t.Errorf("OnSlotError slots = %v, want [1 2]", slotErrs)
	}
}

func TestBreakerTripsToPowerCapped(t *testing.T) {
	bad := map[int]bool{}
	for s := 0; s < 6; s++ {
		bad[s] = true
	}
	loop, _ := degradeFixture(t, bad)
	loop.MaxConsecutiveFailures = 2
	var breakerSlots int
	loop.OnSlotError = func(slot int, err error) {
		if errors.Is(err, ErrBreakerOpen) {
			breakerSlots++
		}
	}
	cleared, err := loop.RunSlots(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cleared != 0 {
		t.Errorf("cleared = %d, want 0", cleared)
	}
	if loop.SlotErrors() != 6 {
		t.Errorf("SlotErrors = %d, want 6", loop.SlotErrors())
	}
	if !loop.BreakerTripped() {
		t.Error("breaker not tripped after consecutive failures")
	}
	// Slots 0,1 fail on the reading; slots 2..5 are skipped by the open
	// breaker without touching the operator.
	if breakerSlots != 4 {
		t.Errorf("breaker-open slots = %d, want 4", breakerSlots)
	}
	if got := loop.Operator.Slots(); got != 0 {
		t.Errorf("operator ran %d slots while everything failed", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	// Failures on slots 0..2 trip the breaker (max 2); cooldown 1 lets a
	// probe slot retry, which succeeds once the readings recover.
	loop, _ := degradeFixture(t, map[int]bool{0: true, 1: true, 2: true})
	loop.MaxConsecutiveFailures = 2
	loop.BreakerCooldownSlots = 1
	cleared, err := loop.RunSlots(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 fails, slot 1 fails → trip. Slot 2 cools down (breaker
	// open). Slot 3 probes: reading is good again → clears, breaker
	// closes. Slots 4,5 clear normally.
	if cleared != 3 {
		t.Errorf("cleared = %d, want 3 (probe + 2 normal)", cleared)
	}
	if loop.SlotErrors() != 3 {
		t.Errorf("SlotErrors = %d, want 3", loop.SlotErrors())
	}
	if loop.BreakerTripped() {
		t.Error("breaker still open after successful probe")
	}
}

func TestValidateRejectsNegativeBreakerConfig(t *testing.T) {
	loop, _ := degradeFixture(t, nil)
	loop.MaxConsecutiveFailures = -1
	if _, err := loop.RunSlots(0, 1); err == nil {
		t.Error("negative MaxConsecutiveFailures accepted")
	}
	loop.MaxConsecutiveFailures = 0
	loop.BreakerCooldownSlots = -1
	if _, err := loop.RunSlots(0, 1); err == nil {
		t.Error("negative BreakerCooldownSlots accepted")
	}
}

// TestDegradedSlotStillAdvancesBidWindow: bids keep flowing after degraded
// slots because TakeBids runs (pruning + advancing) even when clearing
// fails.
func TestDegradedSlotStillAdvancesBidWindow(t *testing.T) {
	loop, srv := degradeFixture(t, map[int]bool{0: true, 1: true})
	client, err := Dial(srv.Addr(), "opp", []string{"O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for slot := 0; slot < 4; slot++ {
		if err := client.SubmitBids(slot, []RackBid{
			{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 6, QMax: 0.16},
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		_, _ = loop.RunSlots(0, 4)
		close(done)
	}()
	price, _, err := client.AwaitPrice(3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if price <= 0 {
		t.Errorf("slot 3 price = %v after degraded slots", price)
	}
	<-done
	if n := srv.PendingBidSlots(); n != 0 {
		t.Errorf("degraded run left %d buffered bid slots", n)
	}
}
