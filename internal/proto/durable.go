// Durable market state: the glue between the market loop and internal/wal.
//
// Commit discipline: a slot is committed when its WAL record is appended
// (and, under the every-slot policy, fsynced) — after the operator has run
// the slot but before any broadcast goes out. Recovery therefore resumes at
// the slot after the last committed record; a crash that tears the record
// of slot K restores to K-1 and the restarted loop re-runs K from the same
// deterministic inputs. A crash after the commit but before the broadcast
// bills a grant tenants never heard — the standard write-ahead trade-off:
// the books never lose a committed slot, at the cost of occasionally
// charging for an undelivered one (see DESIGN §4h).
package proto

import (
	"encoding/json"
	"fmt"

	"spotdc/internal/operator"
	"spotdc/internal/wal"
)

// walTypeSlot is the WAL record type for one committed slot.
const walTypeSlot byte = 0x01

// defaultSnapshotEvery is how many committed slots elapse between automatic
// snapshots when Durable.SnapshotEvery is zero.
const defaultSnapshotEvery = 64

// Durable threads a write-ahead log through the market loop: one record
// per slot boundary, periodic snapshots with segment compaction, and
// recovery back into the operator and server.
type Durable struct {
	// Log is the open write-ahead log (required).
	Log *wal.Log
	// SnapshotEvery takes a snapshot after this many committed slots
	// (default 64). Snapshots bound replay length and let the log drop
	// fully-covered segments.
	SnapshotEvery int
	// ExtraSnapshot, if non-nil, contributes opaque extra state (e.g. a
	// billing ledger) to every snapshot; RecoverDurable hands it back in
	// Recovered.ExtraSnapshot. The hook keeps this package free of
	// higher-layer imports (billing imports proto's consumers, not vice
	// versa).
	ExtraSnapshot func() ([]byte, error)
	// ExtraSlot, if non-nil, contributes opaque extra state to every slot
	// record (e.g. harness-side device budgets); RecoverDurable returns the
	// replayed values in order in Recovered.ExtraSlots.
	ExtraSlot func(slot int) ([]byte, error)
	// OnCommit, if non-nil, runs right before a cleared slot's record is
	// built: the hook higher layers use to fold the slot into their own
	// state (e.g. a billing ledger) so the subsequent ExtraSlot capture
	// already includes it. Degraded slots do not fire it.
	OnCommit func(slot int, out operator.SlotOutcome)

	sinceSnapshot int
}

// durableSlotRecord is the JSON payload of one walTypeSlot record.
type durableSlotRecord struct {
	Slot     int                  `json:"slot"`
	Degraded bool                 `json:"degraded,omitempty"`
	Commit   *operator.SlotCommit `json:"commit,omitempty"`
	Extra    json.RawMessage      `json:"extra,omitempty"`
}

// durableSnapshot is the JSON payload of a WAL snapshot frame.
type durableSnapshot struct {
	Checkpoint operator.Checkpoint `json:"checkpoint"`
	Taken      int                 `json:"taken"`
	HaveTaken  bool                `json:"have_taken"`
	Extra      json.RawMessage     `json:"extra,omitempty"`
}

func (d *Durable) validate() error {
	if d.Log == nil {
		return fmt.Errorf("%w: Durable needs an open WAL", ErrProtocol)
	}
	if d.SnapshotEvery < 0 {
		return fmt.Errorf("%w: SnapshotEvery %d negative", ErrProtocol, d.SnapshotEvery)
	}
	return nil
}

// commitSlot appends the slot's WAL record and makes it durable under the
// log's sync policy. WAL failures are sticky inside the log and must never
// stop the market (availability over durability — the operator keeps
// clearing on a full disk); callers surface Log.Err() at shutdown.
func (d *Durable) commitSlot(op *operator.Operator, srv *Server, slot int, commit *operator.SlotCommit) {
	rec := durableSlotRecord{Slot: slot, Degraded: commit == nil, Commit: commit}
	if d.ExtraSlot != nil {
		if extra, err := d.ExtraSlot(slot); err == nil {
			rec.Extra = extra
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := d.Log.Append(walTypeSlot, data); err != nil {
		return
	}
	_ = d.Log.SlotSync()
	every := d.SnapshotEvery
	if every == 0 {
		every = defaultSnapshotEvery
	}
	if d.sinceSnapshot++; d.sinceSnapshot >= every {
		d.sinceSnapshot = 0
		d.snapshot(op, srv)
	}
}

// snapshot persists a full checkpoint and compacts covered segments.
func (d *Durable) snapshot(op *operator.Operator, srv *Server) {
	snap := durableSnapshot{Checkpoint: op.Checkpoint()}
	if srv != nil {
		snap.Taken, snap.HaveTaken = srv.MarketPosition()
	}
	if d.ExtraSnapshot != nil {
		extra, err := d.ExtraSnapshot()
		if err != nil {
			return
		}
		snap.Extra = extra
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return
	}
	_ = d.Log.Snapshot(data)
}

// Recovered reports what RecoverDurable rebuilt from a state directory.
type Recovered struct {
	// NextSlot is where the market loop should resume: one past the last
	// committed slot (0 for a fresh directory).
	NextSlot int
	// SlotsReplayed counts committed slot records applied on top of the
	// snapshot; DegradedReplayed counts degraded markers among them.
	SlotsReplayed    int
	DegradedReplayed int
	// HadSnapshot reports whether a snapshot anchored the recovery.
	HadSnapshot bool
	// Truncations echoes the WAL's torn-tail repairs (wal.Recovery).
	Truncations int
	// ExtraSnapshot is the opaque extra state from the recovered snapshot
	// (nil without one); ExtraSlots are the per-slot extras in replay order.
	ExtraSnapshot []byte
	ExtraSlots    [][]byte
}

// RecoverDurable rebuilds market state from a WAL recovery: the snapshot
// (if any) restores the operator checkpoint and server position, then every
// committed slot record replays into the books. srv may be nil (recovery
// before the server exists); the operator is required.
func RecoverDurable(rec *wal.Recovery, op *operator.Operator, srv *Server) (*Recovered, error) {
	if op == nil {
		return nil, fmt.Errorf("%w: recovery needs an operator", ErrProtocol)
	}
	out := &Recovered{Truncations: rec.Truncations}
	if rec.Snapshot != nil {
		var snap durableSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("proto: corrupt snapshot payload: %w", err)
		}
		if err := op.Restore(snap.Checkpoint); err != nil {
			return nil, err
		}
		out.HadSnapshot = true
		out.ExtraSnapshot = snap.Extra
		if snap.HaveTaken {
			out.NextSlot = snap.Taken + 1
		}
	}
	for _, r := range rec.Records {
		if r.Type != walTypeSlot {
			continue
		}
		var sr durableSlotRecord
		if err := json.Unmarshal(r.Data, &sr); err != nil {
			return nil, fmt.Errorf("proto: corrupt slot record seq %d: %w", r.Seq, err)
		}
		if sr.Degraded {
			out.DegradedReplayed++
		} else if sr.Commit != nil {
			if err := op.ApplySlotCommit(*sr.Commit); err != nil {
				return nil, fmt.Errorf("proto: slot record %d: %w", sr.Slot, err)
			}
		}
		out.SlotsReplayed++
		if sr.Extra != nil {
			out.ExtraSlots = append(out.ExtraSlots, sr.Extra)
		}
		if sr.Slot+1 > out.NextSlot {
			out.NextSlot = sr.Slot + 1
		}
	}
	if srv != nil && out.NextSlot > 0 {
		// Position the bid window so reconnecting tenants land in the
		// correct slot: bids at or before the last committed slot are stale.
		srv.RestoreMarketPosition(out.NextSlot - 1)
	}
	return out, nil
}
