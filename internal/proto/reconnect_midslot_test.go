package proto

import (
	"strings"
	"testing"
	"time"
)

// TestReconnectMidSlotReplacesNotDuplicates is the regression for the
// double-billing path this PR closes: a tenant whose session drops
// mid-slot and who resubmits its bid after reconnecting must end up with
// exactly ONE bid for the slot — the keyed replacement — never a second
// entry that would grant (and bill) the rack twice in the same clearing.
func TestReconnectMidSlotReplacesNotDuplicates(t *testing.T) {
	s := newServerOpts(t, ServerOptions{SessionTTL: 80 * time.Millisecond, ReapInterval: 20 * time.Millisecond})
	c, err := DialOpts(s.Addr(), "tenant-a", []string{"S-1"}, ClientOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		MaxAttempts: 30,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)

	// Anchor the market position: slot 1 is the in-flight slot.
	s.TakeBids(0)
	if err := c.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 10, QMin: 0.05, DMin: 2, QMax: 0.2}}); err != nil {
		t.Fatal(err)
	}
	deadlineAt := time.Now().Add(2 * time.Second)
	for s.BufferedBids(1) < 1 {
		if time.Now().After(deadlineAt) {
			t.Fatal("pre-drop bid never buffered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The session drops mid-slot (idle reap simulates the half-open loss).
	deadlineAt = time.Now().Add(2 * time.Second)
	for len(s.Sessions()) != 0 {
		if time.Now().After(deadlineAt) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resubmit across the reconnect. The first write on the dead
	// connection may be silently buffered by the kernel, so keep
	// resubmitting until the re-hello restores the session, then send one
	// authoritative replacement on the live session.
	replacement := []RackBid{{Rack: "S-1", DMax: 30, QMin: 0.05, DMin: 2, QMax: 0.3}}
	deadlineAt = time.Now().Add(2 * time.Second)
	for len(s.Sessions()) == 0 {
		if time.Now().After(deadlineAt) {
			t.Fatal("session never reconnected")
		}
		_ = c.SubmitBids(1, replacement)
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.SubmitBids(1, replacement); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	// Exactly one bid survives for the slot, and it is the replacement.
	bids := s.TakeBids(1)
	if len(bids) != 1 {
		t.Fatalf("slot 1 holds %d bids after reconnect resubmit, want 1 (duplicates double-bill)", len(bids))
	}
	if got := bids[0].Fn.MaxDemand(); got != 30 {
		t.Errorf("surviving bid DMax = %v, want the 30 W replacement", got)
	}

	// A resubmit that lands after the operator drained the slot is stale:
	// it must be rejected, never buffered into the closed slot where a
	// later drain (or pruning bug) could bill it.
	if err := c.SubmitBids(1, replacement); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if n := s.BufferedBids(1); n != 0 {
		t.Errorf("%d stale bids buffered for the drained slot — would double-bill", n)
	}
	if late := s.TakeBids(1); len(late) != 0 {
		t.Errorf("drained slot yielded %d late bids", len(late))
	}
}

// TestHelloRejectsForeignRack: with OwnerOf wired, a tenant cannot register
// a rack owned by someone else — the misattributed-revenue path the
// operator's books can't reconcile.
func TestHelloRejectsForeignRack(t *testing.T) {
	s := newServerOpts(t, ServerOptions{
		OwnerOf: func(idx int) string {
			if idx == 0 {
				return "tenant-a" // S-1 belongs to tenant-a
			}
			return ""
		},
	})
	if _, err := Dial(s.Addr(), "mallory", []string{"S-1"}); err == nil {
		t.Fatal("hello claiming a foreign rack succeeded")
	} else if !strings.Contains(err.Error(), "belongs to") {
		t.Errorf("err = %v, want ownership rejection", err)
	}
	// The rightful owner still registers, and unowned racks stay open.
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1", "S-2"})
	if err != nil {
		t.Fatalf("rightful owner rejected: %v", err)
	}
	c.Close()
}
