package proto

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
)

// benchMsg is a representative price broadcast: four grants, realistic IDs.
var benchMsg = Message{Type: TypePrice, Tenant: "tenant-a", Slot: 42, Price: 0.0375, Grants: []Grant{
	{Rack: "R-001", Watts: 240.5}, {Rack: "R-002", Watts: 120.25},
	{Rack: "R-003", Watts: 60}, {Rack: "R-004", Watts: 30.75},
}}

// BenchmarkCodec measures one Send (to a sink) plus one Recv (from a
// pre-encoded frame) per iteration for each wire encoding — the per-message
// codec cost with transport factored out.
func BenchmarkCodec(b *testing.B) {
	for _, enc := range []Encoding{WireJSON, WireBinary} {
		b.Run(enc.String(), func(b *testing.B) {
			sink := &discardConn{frames: new(atomic.Int64)}
			var tx, rx Wire
			var pre memStream
			if enc == WireBinary {
				tx = NewBinaryCodec(sink)
				if err := NewBinaryCodec(&pre).Send(benchMsg); err != nil {
					b.Fatal(err)
				}
				rx = newBinaryCodec(bufio.NewReader(&repeatReader{frame: pre.Bytes()}), sink)
			} else {
				tx = NewCodec(sink)
				if err := NewCodec(&pre).Send(benchMsg); err != nil {
					b.Fatal(err)
				}
				rx = newJSONCodec(&repeatReader{frame: pre.Bytes()}, sink)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tx.Send(benchMsg); err != nil {
					b.Fatal(err)
				}
				if _, err := rx.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newPipeFanoutServer builds a listenerless server whose n sessions ride
// real net.Pipe connections, each drained by a decoding reader goroutine
// that counts delivered frames — in-memory, but with a blocking transport:
// a send costs a rendezvous with its peer, as a socket write costs a
// syscall. Benchmarks use this; the alloc tests keep the discard sinks
// (pipe deadlines arm timers, which are not on the codec's alloc budget).
func newPipeFanoutServer(b *testing.B, n int, wire Encoding, opts ServerOptions) (*Server, *atomic.Int64) {
	b.Helper()
	s := newServerState(opts)
	frames := new(atomic.Int64)
	for i := 0; i < n; i++ {
		local, remote := net.Pipe()
		var codec, peer Wire
		if wire == WireBinary {
			codec, peer = NewBinaryCodec(local), NewBinaryCodec(remote)
		} else {
			codec, peer = NewCodec(local), NewCodec(remote)
		}
		go func() {
			for {
				if _, err := peer.Recv(); err != nil {
					return
				}
				frames.Add(1)
			}
		}()
		sess := &session{
			tenant: fmt.Sprintf("t%04d", i),
			racks:  map[string]int{fmt.Sprintf("R%04d", i): i},
			codec:  codec,
			conn:   local,
			queue:  make(chan queuedMsg, s.opts.QueueDepth),
			quit:   make(chan struct{}),
		}
		sess.touch()
		s.sessions[sess.tenant] = sess
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.writeLoop(sess)
		}()
	}
	b.Cleanup(func() { s.Close() })
	return s, frames
}

// BenchmarkBroadcast measures what the market loop pays per slot under the
// concurrent fan-out: the Server.Broadcast call itself — pooled grouping
// plus one bounded-queue enqueue per session, never a peer round-trip. The
// writer goroutines drain each slot off-timer (verified to completion, so
// a stalled writer hangs the benchmark instead of flattering it); their
// sends overlap the next slot's clearing in production, exactly as here.
// Compare BenchmarkBroadcastSerialJSON, the pre-refactor in-line cost.
func BenchmarkBroadcast(b *testing.B) {
	for _, sessions := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			s, frames := newPipeFanoutServer(b, sessions, WireBinary, ServerOptions{QueueDepth: 64})
			allocs, rackID := fanoutAllocs(sessions)
			// Warm the pooled grouping and writer scratch.
			var sent int64
			for i := 0; i < 3; i++ {
				s.Broadcast(i, 0.1, allocs, rackID)
				sent += int64(sessions)
				drainTo(b, frames, sent)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Broadcast(i, 0.1, allocs, rackID)
				sent += int64(sessions)
				b.StopTimer()
				drainTo(b, frames, sent)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkBroadcastSerialJSON reproduces the pre-refactor broadcast — a
// fresh perTenant grouping map and one synchronous JSON send per session,
// in-line on the market loop's goroutine — over the same piped transport,
// as the baseline the concurrent fan-out is judged against.
func BenchmarkBroadcastSerialJSON(b *testing.B) {
	for _, sessions := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			codecs := make([]*Codec, sessions)
			tenants := make([]string, sessions)
			for i := range codecs {
				local, remote := net.Pipe()
				codecs[i] = NewCodec(local)
				peer := NewCodec(remote)
				go func() {
					for {
						if _, err := peer.Recv(); err != nil {
							return
						}
					}
				}()
				b.Cleanup(func() { local.Close(); remote.Close() })
				tenants[i] = fmt.Sprintf("t%04d", i)
			}
			allocs, rackID := fanoutAllocs(sessions)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perTenant := make(map[string][]Grant)
				for _, a := range allocs {
					perTenant[a.Tenant] = append(perTenant[a.Tenant], Grant{Rack: rackID(a.Rack), Watts: a.Watts})
				}
				for j, c := range codecs {
					msg := Message{Type: TypePrice, Tenant: tenants[j], Slot: i, Price: 0.1, Grants: perTenant[tenants[j]]}
					if err := c.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
