package proto

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spotdc/internal/core"
)

// discardConn is a write-only sink that counts frames: the fan-out fixture
// hangs binary codecs off it so broadcast tests and benchmarks can wait for
// the writer goroutines to drain without real sockets (4096 sessions would
// exhaust fd limits long before they stressed the fan-out).
type discardConn struct{ frames *atomic.Int64 }

func (d *discardConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (d *discardConn) Write(p []byte) (int, error) { d.frames.Add(1); return len(p), nil }
func (d *discardConn) Close() error                { return nil }

// repeatReader serves the same frame forever — the decode side of the
// steady-state codec measurements.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}

// newFanoutServer builds a listenerless server with n synthetic sessions,
// each with a live writer goroutine draining to a shared frame counter.
// Tenant i is named t<i> and owns rack R<i>.
func newFanoutServer(n int, wire Encoding, opts ServerOptions) (*Server, *atomic.Int64) {
	s := newServerState(opts)
	frames := new(atomic.Int64)
	for i := 0; i < n; i++ {
		sink := &discardConn{frames: frames}
		var codec Wire
		if wire == WireBinary {
			codec = NewBinaryCodec(sink)
		} else {
			codec = NewCodec(sink)
		}
		sess := &session{
			tenant: fmt.Sprintf("t%04d", i),
			racks:  map[string]int{fmt.Sprintf("R%04d", i): i},
			codec:  codec,
			queue:  make(chan queuedMsg, s.opts.QueueDepth),
			quit:   make(chan struct{}),
		}
		sess.touch()
		s.sessions[sess.tenant] = sess
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.writeLoop(sess)
		}()
	}
	return s, frames
}

// fanoutAllocs builds one grant per tenant plus the rackID lookup.
func fanoutAllocs(n int) ([]core.Allocation, func(int) string) {
	allocs := make([]core.Allocation, n)
	ids := make([]string, n)
	for i := range allocs {
		allocs[i] = core.Allocation{Rack: i, Tenant: fmt.Sprintf("t%04d", i), Watts: 100 + float64(i)}
		ids[i] = fmt.Sprintf("R%04d", i)
	}
	return allocs, func(i int) string { return ids[i] }
}

// drainTo blocks until the writer goroutines have emitted want frames.
func drainTo(tb testing.TB, frames *atomic.Int64, want int64) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for frames.Load() < want {
		if time.Now().After(deadline) {
			tb.Fatalf("fan-out stalled: %d of %d frames written", frames.Load(), want)
		}
		runtime.Gosched()
	}
}

// TestWireAllocBudget is the protocol twin of TestClearAllocBudget: the
// steady-state hot path — binary Send, binary Recv, and the full Broadcast
// and BroadcastBudgetReset fan-out including the writer goroutines — must
// perform zero heap allocations per operation once warm. AllocsPerRun
// measures process-wide mallocs, so the writers' sends are inside the
// budget, not just the enqueue.
func TestWireAllocBudget(t *testing.T) {
	msg := Message{Type: TypePrice, Tenant: "tenant-a", Slot: 42, Price: 0.0375, Grants: []Grant{
		{Rack: "R-1", Watts: 120}, {Rack: "R-2", Watts: 80},
		{Rack: "R-3", Watts: 60}, {Rack: "R-4", Watts: 40},
	}}

	t.Run("binary-send", func(t *testing.T) {
		enc := NewBinaryCodec(&discardConn{frames: new(atomic.Int64)})
		for i := 0; i < 100; i++ {
			if err := enc.Send(msg); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := enc.Send(msg); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("binary Send: %.1f allocs/op, want 0", allocs)
		}
	})

	t.Run("binary-recv", func(t *testing.T) {
		var buf memStream
		if err := NewBinaryCodec(&buf).Send(msg); err != nil {
			t.Fatal(err)
		}
		dec := newBinaryCodec(bufio.NewReader(&repeatReader{frame: buf.Bytes()}), &discardConn{frames: new(atomic.Int64)})
		for i := 0; i < 100; i++ {
			if _, err := dec.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := dec.Recv(); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("binary Recv: %.1f allocs/op, want 0", allocs)
		}
	})

	t.Run("broadcast", func(t *testing.T) {
		const sessions = 8
		s, frames := newFanoutServer(sessions, WireBinary, ServerOptions{})
		defer s.Close()
		allocs, rackID := fanoutAllocs(sessions)
		var sent int64
		for i := 0; i < 50; i++ {
			s.Broadcast(i, 0.1, allocs, rackID)
			sent += sessions
			drainTo(t, frames, sent)
		}
		if a := testing.AllocsPerRun(20, func() {
			s.Broadcast(99, 0.1, allocs, rackID)
			sent += sessions
			drainTo(t, frames, sent)
		}); a != 0 {
			t.Errorf("Broadcast fan-out: %.1f allocs/op, want 0", a)
		}
	})

	t.Run("budget-reset", func(t *testing.T) {
		const sessions = 8
		s, frames := newFanoutServer(sessions, WireBinary, ServerOptions{})
		defer s.Close()
		budgets := make(map[int]float64, sessions)
		for i := 0; i < sessions; i++ {
			budgets[i] = 250
		}
		var sent int64
		for i := 0; i < 50; i++ {
			s.BroadcastBudgetReset(i, budgets)
			sent += sessions
			drainTo(t, frames, sent)
		}
		if a := testing.AllocsPerRun(20, func() {
			s.BroadcastBudgetReset(99, budgets)
			sent += sessions
			drainTo(t, frames, sent)
		}); a != 0 {
			t.Errorf("BroadcastBudgetReset fan-out: %.1f allocs/op, want 0", a)
		}
	})
}
