// Package proto implements the SpotDC communication layer of Fig. 5: a
// simple management protocol between the operator and remote tenants,
// carrying HeartBeat, Bid, Price and Allocation messages over TCP.
//
// Two wire encodings carry the same six message types: the historical
// newline-delimited JSON (Codec) and a compact length-prefixed binary
// framing (BinaryCodec, see binary.go). The encoding is negotiated at
// hello: the server detects which encoding the client's first byte opened
// with and answers in kind, so old JSON clients interoperate unchanged
// with binary ones on the same market.
//
// Failure semantics follow Section III-C's "handling exceptions": any
// communication loss resumes the default of no spot capacity for the
// affected tenant — a missing or late bid simply does not participate in
// that slot's clearing, and a tenant that misses the price broadcast knows
// it has no grant.
package proto

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// ErrProtocol reports a malformed or unexpected message.
var ErrProtocol = errors.New("proto: protocol error")

// MsgType enumerates the wire messages.
type MsgType string

// Wire message types.
const (
	// TypeHello registers a tenant and its racks with the operator.
	TypeHello MsgType = "hello"
	// TypeHeartBeat keeps the session alive and carries slot timing.
	TypeHeartBeat MsgType = "heartbeat"
	// TypeBid submits one slot's rack-level demand-function bids.
	TypeBid MsgType = "bid"
	// TypePrice broadcasts the clearing price and per-rack grants.
	TypePrice MsgType = "price"
	// TypeBudgetReset pushes emergency rack-budget resets to the owning
	// tenants (Section III-C, Fig. 6): Grants carries the new per-rack
	// budgets in watts, which the tenant's capping controller must track.
	// Clients that predate the message skip it (unknown types are ignored
	// in the price wait loop), falling back to operator-side enforcement.
	TypeBudgetReset MsgType = "budget_reset"
	// TypeError reports a rejected message.
	TypeError MsgType = "error"
)

// RackBid is the four-parameter wire form of the piece-wise linear demand
// function (Eqn. 5).
type RackBid struct {
	// Rack is the rack ID as registered with the operator.
	Rack string `json:"rack"`
	// DMax/QMin and DMin/QMax are the demand-function parameters.
	DMax float64 `json:"d_max"`
	QMin float64 `json:"q_min"`
	DMin float64 `json:"d_min"`
	QMax float64 `json:"q_max"`
}

// Grant is one rack's allocation in a price broadcast.
type Grant struct {
	Rack  string  `json:"rack"`
	Watts float64 `json:"watts"`
}

// Message is the wire envelope. Unused fields are omitted per type.
type Message struct {
	Type MsgType `json:"type"`
	// Tenant identifies the sender (hello, bid) or addressee (price).
	Tenant string `json:"tenant,omitempty"`
	// Slot is the time slot the message concerns.
	Slot int `json:"slot,omitempty"`
	// Racks registers rack IDs (hello).
	Racks []string `json:"racks,omitempty"`
	// Bids carries demand functions (bid).
	Bids []RackBid `json:"bids,omitempty"`
	// Price is the clearing price in $/kW·h (price).
	Price float64 `json:"price,omitempty"`
	// Grants carries the per-rack spot allocations (price), or the new
	// per-rack power budgets in watts (budget_reset).
	Grants []Grant `json:"grants,omitempty"`
	// Detail carries the error text (error).
	Detail string `json:"detail,omitempty"`
	// Trace is the optional traceparent field (otrace.FormatTraceparent):
	// on price/budget_reset it carries the operator's slot trace for the
	// tenant to adopt; on bid it carries the tenant's provisional trace
	// (informational). JSON peers that predate the field ignore it; the
	// binary framing carries it only on version-2 frames (see binary.go's
	// negotiation), so old binary peers interoperate unchanged.
	Trace string `json:"trace,omitempty"`
}

// MaxLineBytes bounds one wire message; bids are tiny (four parameters per
// rack), so anything larger is a protocol violation.
const MaxLineBytes = 1 << 20

// Encoding selects the wire encoding a client opens its session with. The
// server always answers in whichever encoding the client spoke first.
type Encoding int

// Wire encodings.
const (
	// WireJSON is the historical newline-delimited JSON encoding — the
	// interop default.
	WireJSON Encoding = iota
	// WireBinary is the compact length-prefixed binary framing (binary.go):
	// one buffered write per message, allocation-free in steady state.
	WireBinary
)

// String names the encoding (the -wire flag values).
func (e Encoding) String() string {
	switch e {
	case WireJSON:
		return "json"
	case WireBinary:
		return "binary"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// ParseEncoding parses a -wire flag value ("json" or "binary").
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	default:
		return 0, fmt.Errorf("%w: unknown wire encoding %q (want json or binary)", ErrProtocol, s)
	}
}

// Wire is one session's message transport: a codec bound to a stream. Both
// the JSON Codec and the BinaryCodec implement it. Send and Recv are each
// single-goroutine (one writer, one reader — the two may be distinct
// goroutines); codecs keep per-direction scratch, so interleaving two
// senders corrupts frames.
type Wire interface {
	// Send writes one message.
	Send(m Message) error
	// Recv reads one message; io.EOF signals a clean close. Slices inside
	// the returned Message may reference codec-owned scratch that is
	// overwritten by the next Recv — callers that retain them must copy.
	Recv() (Message, error)
	// Close closes the underlying stream.
	Close() error
	// Encoding identifies the codec's wire encoding.
	Encoding() Encoding
}

// Codec reads and writes newline-delimited JSON messages on a stream.
type Codec struct {
	r *bufio.Scanner
	w *bufio.Writer
	c io.Closer
}

// NewCodec wraps a connection.
func NewCodec(rw io.ReadWriteCloser) *Codec {
	return newJSONCodec(rw, rw)
}

// newJSONCodec builds the JSON codec over an explicit reader (the server
// peeks the first byte through a shared bufio.Reader to negotiate the
// encoding, then hands the same reader here).
func newJSONCodec(r io.Reader, wc io.WriteCloser) *Codec {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	return &Codec{r: sc, w: bufio.NewWriter(wc), c: wc}
}

// Encoding identifies the codec as the JSON wire encoding.
func (c *Codec) Encoding() Encoding { return WireJSON }

// Send writes one message.
func (c *Codec) Send(m Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one message. io.EOF signals a clean close.
func (c *Codec) Recv() (Message, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return Message{}, err
		}
		return Message{}, io.EOF
	}
	var m Message
	if err := json.Unmarshal(c.r.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("%w: missing type", ErrProtocol)
	}
	return m, nil
}

// Close closes the underlying stream.
func (c *Codec) Close() error { return c.c.Close() }

// deadline is the per-message I/O deadline; the paper's slots are minutes
// long, so a second is generous.
const deadline = 5 * time.Second

// SetConnDeadline arms a network deadline when the stream is a net.Conn.
func setConnDeadline(rw io.ReadWriteCloser, d time.Duration) {
	if conn, ok := rw.(net.Conn); ok {
		_ = conn.SetDeadline(time.Now().Add(d))
	}
}
