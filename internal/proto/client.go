package proto

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"spotdc/internal/otrace"
)

// ErrNoPrice reports that no price broadcast arrived for the awaited slot;
// per Section III-C the tenant then defaults to "no spot capacity".
var ErrNoPrice = errors.New("proto: no price broadcast for slot")

// ErrReconnectFailed reports that an automatic reconnect exhausted its
// attempt budget; the session is gone until the caller dials again.
var ErrReconnectFailed = errors.New("proto: reconnect failed")

// ClientOptions tunes the tenant-side endpoint. The zero value preserves
// the historical behavior: no automatic reconnect, plain TCP dialing.
type ClientOptions struct {
	// Reconnect enables automatic redial with exponential backoff and
	// jitter whenever the connection drops. The re-dial replays the hello
	// (re-registering the client's racks), so a transient loss costs at
	// most the slots it spans — the Section III-C no-spot default — rather
	// than evicting the tenant from the market permanently.
	Reconnect bool
	// BackoffBase is the first retry delay (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (default 5s).
	BackoffMax time.Duration
	// MaxAttempts bounds redial attempts per outage (default 8;
	// negative means unlimited — bound it with AwaitPrice deadlines).
	MaxAttempts int
	// Seed drives the backoff jitter, making outage schedules
	// reproducible in tests.
	Seed int64
	// OnReconnect, if non-nil, observes every redial attempt: err is nil
	// when the attempt restored the session.
	OnReconnect func(attempt int, err error)
	// HandshakeTimeout bounds the dial + hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// Dialer replaces the TCP dialer — the fault-injection hook (see
	// FaultInjector.Dial). Default net.DialTimeout over HandshakeTimeout.
	Dialer func(addr string) (net.Conn, error)
	// Wire selects the session's wire encoding (default WireJSON — the
	// interop default). The server detects the encoding from the client's
	// first byte and answers in kind, so mixed fleets share one market.
	Wire Encoding
	// Metrics, if non-nil, counts restored sessions on the shared protocol
	// handle set (spotdc_proto_client_reconnects_total).
	Metrics *Metrics
	// OnBudgetReset, if non-nil, observes emergency budget resets pushed by
	// the operator (Section III-C): budgets carries the new per-rack power
	// budgets in watts for this tenant's racks. It runs on the goroutine
	// driving AwaitPrice, which keeps waiting for the price afterwards; the
	// tenant drives its capping controller to the reduced budget here. Nil
	// leaves budget resets ignored (operator-side enforcement still caps
	// the rack). budgets may reference codec-owned decode scratch: it is
	// only valid for the duration of the callback — copy to retain.
	OnBudgetReset func(slot int, budgets []Grant)
	// Logf, if non-nil, narrates redial attempts. Default silent:
	// reconnects are expected operation under churn and are surfaced via
	// Metrics and OnReconnect.
	Logf func(format string, args ...interface{})
	// Tracer, if non-nil, opens tenant-side spans: one provisional
	// tenant_slot root per slot with submit and await_price children
	// (harnesses add bid_decision via SlotSpan). When the slot's price
	// broadcast delivers the operator's traceparent the provisional trace
	// is adopted into the operator's slot trace (otrace.Tracer.Adopt), so
	// tenant spans parent under the operator's broadcast across the wire.
	// Over the binary encoding this enables version-2 frames, which an
	// old (v1-only) server rejects at hello; leave the tracer nil to talk
	// to pre-trace binary servers. Nil is free.
	Tracer *otrace.Tracer
}

func (o *ClientOptions) setDefaults() {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = deadline
	}
}

// Client is the tenant-side endpoint: it registers racks, submits bids,
// and awaits the price broadcast each slot. Methods are not safe for
// concurrent use; drive one Client from one goroutine (the per-slot bidding
// loop of Fig. 6).
type Client struct {
	tenant string
	addr   string
	racks  []string
	opts   ClientOptions
	rng    *rand.Rand

	conn  net.Conn
	codec Wire

	// grantScratch backs the slices returned by AwaitPrice: the binary
	// codec's decode scratch is overwritten by the next Recv, so grants are
	// copied into a client-owned buffer reused across slots (alloc-free in
	// steady state). The returned slice is valid until the next AwaitPrice.
	grantScratch []Grant

	// root is the current slot's provisional tenant_slot span (nil with
	// tracing off); rootSlot is the slot it covers.
	root     *otrace.Span
	rootSlot int

	reconnects int
}

// Dial connects to the operator and registers the tenant's racks with
// default options (no automatic reconnect).
func Dial(addr, tenantName string, racks []string) (*Client, error) {
	return DialOpts(addr, tenantName, racks, ClientOptions{})
}

// DialOpts connects with explicit options.
func DialOpts(addr, tenantName string, racks []string, opts ClientOptions) (*Client, error) {
	if tenantName == "" {
		return nil, errors.New("proto: empty tenant name")
	}
	opts.setDefaults()
	c := &Client{
		tenant: tenantName,
		addr:   addr,
		racks:  append([]string(nil), racks...),
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials and performs the hello handshake, installing the fresh
// connection on success.
func (c *Client) connect() error {
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, c.opts.HandshakeTimeout)
		}
	}
	conn, err := dial(c.addr)
	if err != nil {
		return err
	}
	var codec Wire
	if c.opts.Wire == WireBinary {
		bc := NewBinaryCodec(conn)
		if c.opts.Tracer != nil {
			// Trace propagation needs the v2 frame envelope; see
			// ClientOptions.Tracer for the compatibility contract.
			bc.EnableTrace()
		}
		codec = bc
	} else {
		codec = NewCodec(conn)
	}
	setConnDeadline(conn, c.opts.HandshakeTimeout)
	if err := codec.Send(Message{Type: TypeHello, Tenant: c.tenant, Racks: c.racks}); err != nil {
		conn.Close()
		return err
	}
	// The server acks the hello with a heartbeat (or rejects with error).
	msg, err := codec.Recv()
	if err != nil {
		conn.Close()
		return err
	}
	if msg.Type == TypeError {
		conn.Close()
		return fmt.Errorf("%w: %s", ErrProtocol, msg.Detail)
	}
	if msg.Type != TypeHeartBeat {
		conn.Close()
		return fmt.Errorf("%w: expected heartbeat ack, got %q", ErrProtocol, msg.Type)
	}
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn, c.codec = conn, codec
	return nil
}

// reconnect redials with exponential backoff and jitter until the session
// is restored, the attempt budget is exhausted, or the deadline (if
// non-zero) passes. cause is the error that broke the connection.
func (c *Client) reconnect(cause error, deadlineAt time.Time) error {
	if !c.opts.Reconnect {
		return cause
	}
	backoff := c.opts.BackoffBase
	var last error = cause
	for attempt := 1; c.opts.MaxAttempts < 0 || attempt <= c.opts.MaxAttempts; attempt++ {
		// Full jitter in [backoff/2, backoff): desynchronizes tenants
		// reconnecting after a shared outage.
		sleep := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		if !deadlineAt.IsZero() && time.Now().Add(sleep).After(deadlineAt) {
			return fmt.Errorf("%w: deadline passed after %d attempts: %v", ErrReconnectFailed, attempt-1, last)
		}
		time.Sleep(sleep)
		err := c.connect()
		if c.opts.OnReconnect != nil {
			c.opts.OnReconnect(attempt, err)
		}
		if c.opts.Logf != nil {
			if err != nil {
				c.opts.Logf("proto: %s redial attempt %d failed: %v", c.tenant, attempt, err)
			} else {
				c.opts.Logf("proto: %s session restored on attempt %d", c.tenant, attempt)
			}
		}
		if err == nil {
			c.reconnects++
			c.opts.Metrics.clientReconnected()
			return nil
		}
		last = err
		if backoff < c.opts.BackoffMax {
			backoff *= 2
			if backoff > c.opts.BackoffMax {
				backoff = c.opts.BackoffMax
			}
		}
	}
	return fmt.Errorf("%w: %d attempts, last error: %v", ErrReconnectFailed, c.opts.MaxAttempts, last)
}

// Reconnects returns how many times the client restored a dropped session.
func (c *Client) Reconnects() int { return c.reconnects }

// SlotSpan returns the client's provisional root span for the slot,
// opening it on first use; submit, await_price, and harness-side
// bid_decision spans parent under it. Moving to a new slot ends the
// previous slot's span (its trace publishes or drops per the decision it
// reached — adopted slots follow the operator's, broadcast-less slots
// the local head sampling). Returns nil with tracing off.
func (c *Client) SlotSpan(slot int) *otrace.Span {
	if c.opts.Tracer == nil {
		return nil
	}
	if c.root != nil && c.rootSlot == slot {
		return c.root
	}
	c.endSlotSpan()
	c.root = c.opts.Tracer.StartProvisionalRoot("tenant_slot", slot)
	c.root.SetStr("tenant", c.tenant)
	c.rootSlot = slot
	return c.root
}

// endSlotSpan closes the current slot's provisional root, if any.
func (c *Client) endSlotSpan() {
	if c.root != nil {
		c.root.End()
		c.root = nil
	}
}

// Tenant returns the registered tenant name.
func (c *Client) Tenant() string { return c.tenant }

// SubmitBids sends the slot's rack-level demand functions. With Reconnect
// enabled a failed send triggers one redial-and-retry; if the retry also
// fails the bid is lost and the tenant simply has no spot capacity for the
// slot (Section III-C).
func (c *Client) SubmitBids(slot int, bids []RackBid) error {
	sp := c.opts.Tracer.StartChild("submit", c.SlotSpan(slot))
	sp.SetInt("bids", int64(len(bids)))
	msg := Message{Type: TypeBid, Tenant: c.tenant, Slot: slot, Bids: bids}
	if sp != nil {
		// Upward propagation is informational (the operator's slot trace
		// does not exist yet when bids go out); the authoritative join is
		// the downward traceparent on the price broadcast.
		msg.Trace = otrace.FormatTraceparent(sp.Context())
	}
	err := c.submitOnce(msg, sp)
	sp.End()
	return err
}

// submitOnce sends a bid message with the one redial-and-retry policy.
func (c *Client) submitOnce(msg Message, sp *otrace.Span) error {
	setConnDeadline(c.conn, deadline)
	err := c.codec.Send(msg)
	if err == nil || !c.opts.Reconnect {
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		return err
	}
	if rerr := c.reconnect(err, time.Time{}); rerr != nil {
		sp.SetStr("error", rerr.Error())
		return rerr
	}
	sp.SetBool("resent", true)
	setConnDeadline(c.conn, deadline)
	if err := c.codec.Send(msg); err != nil {
		sp.SetStr("error", err.Error())
		return err
	}
	return nil
}

// HeartBeat exchanges a keep-alive for the slot.
func (c *Client) HeartBeat(slot int) error {
	setConnDeadline(c.conn, deadline)
	err := c.codec.Send(Message{Type: TypeHeartBeat, Tenant: c.tenant, Slot: slot})
	if err == nil || !c.opts.Reconnect {
		return err
	}
	if rerr := c.reconnect(err, time.Time{}); rerr != nil {
		return rerr
	}
	setConnDeadline(c.conn, deadline)
	return c.codec.Send(Message{Type: TypeHeartBeat, Tenant: c.tenant, Slot: slot})
}

// AwaitPrice blocks until the price broadcast for the slot arrives or the
// timeout expires. Heartbeats, stale price messages, and error replies for
// other slots (e.g. a late rejection of last slot's bid) are skipped —
// only an error reply for the awaited slot is returned. On timeout it
// returns ErrNoPrice: the tenant must assume no spot capacity. With
// Reconnect enabled a broken connection is redialed within the timeout
// and the wait resumes; if the price was broadcast while the link was
// down, the wait ends in ErrNoPrice — the no-spot default, never a
// wrong price.
func (c *Client) AwaitPrice(slot int, timeout time.Duration) (price float64, grants []Grant, err error) {
	if c.opts.Tracer == nil {
		return c.awaitPrice(slot, timeout, nil)
	}
	root := c.SlotSpan(slot)
	sp := c.opts.Tracer.StartChild("await_price", root)
	price, grants, err = c.awaitPrice(slot, timeout, root)
	if err != nil {
		sp.SetStr("error", err.Error())
	} else {
		sp.SetFloat("price", price)
		sp.SetInt("grants", int64(len(grants)))
	}
	sp.End()
	// The slot is settled for this tenant either way; close the root so
	// the trace publishes (or drops) now rather than at the next slot.
	c.endSlotSpan()
	return price, grants, err
}

// awaitPrice is AwaitPrice's wait loop; root, when non-nil, is the
// slot's provisional span to adopt into the operator's trace when the
// price broadcast delivers a traceparent.
func (c *Client) awaitPrice(slot int, timeout time.Duration, root *otrace.Span) (price float64, grants []Grant, err error) {
	deadlineAt := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadlineAt)
		if remaining <= 0 {
			return 0, nil, ErrNoPrice
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(remaining))
		msg, err := c.codec.Recv()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return 0, nil, ErrNoPrice
			}
			if c.opts.Reconnect {
				if rerr := c.reconnect(err, deadlineAt); rerr != nil {
					// The session is gone for this slot: the safe default
					// is no spot capacity.
					return 0, nil, fmt.Errorf("%w (%v)", ErrNoPrice, rerr)
				}
				continue
			}
			if errors.Is(err, io.EOF) {
				return 0, nil, ErrNoPrice
			}
			return 0, nil, err
		}
		switch {
		case msg.Type == TypePrice && msg.Slot == slot:
			if root != nil && msg.Trace != "" {
				// The broadcast carries the operator's slot trace: re-home
				// the provisional tenant trace under it, inheriting the
				// operator's sampling decision.
				if rctx, perr := otrace.ParseTraceparent(msg.Trace); perr == nil {
					c.opts.Tracer.Adopt(root, rctx)
				}
			}
			// Copy out of codec-owned decode scratch (see Wire.Recv); the
			// returned slice is valid until the next AwaitPrice call.
			c.grantScratch = append(c.grantScratch[:0], msg.Grants...)
			grants = c.grantScratch
			if len(grants) == 0 {
				grants = nil
			}
			return msg.Price, grants, nil
		case msg.Type == TypePrice && msg.Slot < slot:
			continue // stale broadcast
		case msg.Type == TypeHeartBeat:
			continue
		case msg.Type == TypeBudgetReset:
			// Emergency budget resets arrive inside the price wait (the
			// operator pushes them just before the slot's price broadcast).
			if c.opts.OnBudgetReset != nil && len(msg.Grants) > 0 {
				c.opts.OnBudgetReset(msg.Slot, msg.Grants)
			}
			continue
		case msg.Type == TypeError && msg.Slot == slot:
			return 0, nil, fmt.Errorf("%w: %s", ErrProtocol, msg.Detail)
		case msg.Type == TypeError:
			continue // stale rejection for another slot: not our market
		default:
			continue
		}
	}
}

// Close terminates the session.
func (c *Client) Close() error {
	c.endSlotSpan()
	return c.codec.Close()
}
