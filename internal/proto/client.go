package proto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// ErrNoPrice reports that no price broadcast arrived for the awaited slot;
// per Section III-C the tenant then defaults to "no spot capacity".
var ErrNoPrice = errors.New("proto: no price broadcast for slot")

// Client is the tenant-side endpoint: it registers racks, submits bids,
// and awaits the price broadcast each slot.
type Client struct {
	tenant string
	conn   net.Conn
	codec  *Codec
}

// Dial connects to the operator and registers the tenant's racks.
func Dial(addr, tenantName string, racks []string) (*Client, error) {
	if tenantName == "" {
		return nil, errors.New("proto: empty tenant name")
	}
	conn, err := net.DialTimeout("tcp", addr, deadline)
	if err != nil {
		return nil, err
	}
	c := &Client{tenant: tenantName, conn: conn, codec: NewCodec(conn)}
	setConnDeadline(conn, deadline)
	if err := c.codec.Send(Message{Type: TypeHello, Tenant: tenantName, Racks: racks}); err != nil {
		conn.Close()
		return nil, err
	}
	// The server acks the hello with a heartbeat (or rejects with error).
	msg, err := c.codec.Recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if msg.Type == TypeError {
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrProtocol, msg.Detail)
	}
	if msg.Type != TypeHeartBeat {
		conn.Close()
		return nil, fmt.Errorf("%w: expected heartbeat ack, got %q", ErrProtocol, msg.Type)
	}
	return c, nil
}

// Tenant returns the registered tenant name.
func (c *Client) Tenant() string { return c.tenant }

// SubmitBids sends the slot's rack-level demand functions.
func (c *Client) SubmitBids(slot int, bids []RackBid) error {
	setConnDeadline(c.conn, deadline)
	return c.codec.Send(Message{Type: TypeBid, Tenant: c.tenant, Slot: slot, Bids: bids})
}

// HeartBeat exchanges a keep-alive for the slot.
func (c *Client) HeartBeat(slot int) error {
	setConnDeadline(c.conn, deadline)
	return c.codec.Send(Message{Type: TypeHeartBeat, Tenant: c.tenant, Slot: slot})
}

// AwaitPrice blocks until the price broadcast for the slot arrives or the
// timeout expires. Heartbeats, errors for other slots, and stale price
// messages are skipped. On timeout it returns ErrNoPrice: the tenant must
// assume no spot capacity.
func (c *Client) AwaitPrice(slot int, timeout time.Duration) (price float64, grants []Grant, err error) {
	deadlineAt := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadlineAt)
		if remaining <= 0 {
			return 0, nil, ErrNoPrice
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(remaining))
		msg, err := c.codec.Recv()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return 0, nil, ErrNoPrice
			}
			if errors.Is(err, io.EOF) {
				return 0, nil, ErrNoPrice
			}
			return 0, nil, err
		}
		switch {
		case msg.Type == TypePrice && msg.Slot == slot:
			return msg.Price, msg.Grants, nil
		case msg.Type == TypePrice && msg.Slot < slot:
			continue // stale broadcast
		case msg.Type == TypeHeartBeat:
			continue
		case msg.Type == TypeError:
			return 0, nil, fmt.Errorf("%w: %s", ErrProtocol, msg.Detail)
		default:
			continue
		}
	}
}

// Close terminates the session.
func (c *Client) Close() error { return c.codec.Close() }
