package proto

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan parameterizes protocol-level fault injection. Probabilities are
// evaluated independently per wire write (the codec flushes one message per
// write), drawn from a stream seeded by Seed, so a given plan replays the
// same statistical fault schedule. The zero value injects nothing.
//
// The plan models Section III-C's failure classes: a dropped write is a
// lost bid or missed price broadcast, a delayed write is congestion, and a
// severed connection is a tenant (or operator-side) link failure. Under
// every one of them the market's contract is the same — the affected
// tenant falls back to the no-spot default while clearing continues.
type FaultPlan struct {
	// Seed drives the fault stream (same seed, same schedule).
	Seed int64
	// DropProb silently discards a write (the message never arrives).
	DropProb float64
	// DelayProb delays a write by a uniform duration in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds an injected delay (default 10ms when DelayProb > 0).
	MaxDelay time.Duration
	// SeverProb closes the connection instead of writing (a hard link
	// failure; the peer observes EOF/reset).
	SeverProb float64
}

// Validate checks the plan's probabilities.
func (p FaultPlan) Validate() error {
	for _, pr := range []float64{p.DropProb, p.DelayProb, p.SeverProb} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("%w: fault probability %v outside [0,1]", ErrProtocol, pr)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("%w: negative MaxDelay %v", ErrProtocol, p.MaxDelay)
	}
	return nil
}

// active reports whether the plan injects any fault at all.
func (p FaultPlan) active() bool {
	return p.DropProb > 0 || p.DelayProb > 0 || p.SeverProb > 0
}

// FaultStats counts the faults an injector has fired.
type FaultStats struct {
	// Drops is the number of silently discarded writes.
	Drops int64
	// Delays is the number of delayed writes.
	Delays int64
	// Severs is the number of forced connection closures.
	Severs int64
}

// FaultInjector wraps connections with a shared, seeded fault stream so a
// whole run (many connections, both directions) replays one schedule. It
// is safe for concurrent use; connections wrapped by the same injector
// draw from the same stream under a lock.
type FaultInjector struct {
	plan FaultPlan

	mu  sync.Mutex
	rng *rand.Rand

	drops  atomic.Int64
	delays atomic.Int64
	severs atomic.Int64

	// met mirrors every injected fault onto the run's shared protocol
	// metrics (set once at wiring time, before any connection is wrapped).
	met *Metrics
}

// SetMetrics mirrors the injector's fault counts onto the shared protocol
// handle set (spotdc_proto_faults_injected_total). Call it before wrapping
// connections; a nil m is a no-op.
func (fi *FaultInjector) SetMetrics(m *Metrics) {
	if fi == nil {
		return
	}
	fi.met = m
}

// NewFaultInjector builds an injector for the plan.
func NewFaultInjector(plan FaultPlan) (*FaultInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.DelayProb > 0 && plan.MaxDelay == 0 {
		plan.MaxDelay = 10 * time.Millisecond
	}
	return &FaultInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}, nil
}

// Stats returns the cumulative fault counts.
func (fi *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Drops:  fi.drops.Load(),
		Delays: fi.delays.Load(),
		Severs: fi.severs.Load(),
	}
}

// Wrap returns conn with the injector's faults applied to every write.
// A nil injector or an inactive plan returns conn unchanged.
func (fi *FaultInjector) Wrap(conn net.Conn) net.Conn {
	if fi == nil || !fi.plan.active() {
		return conn
	}
	return &FaultyConn{Conn: conn, inj: fi}
}

// Dial connects over TCP and wraps the connection. It matches the
// ClientOptions.Dialer signature, so a tenant client can dial through the
// injector.
func (fi *FaultInjector) Dial(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, deadline)
	if err != nil {
		return nil, err
	}
	return fi.Wrap(conn), nil
}

// draw samples the fault decision for one write.
func (fi *FaultInjector) draw() (drop bool, delay time.Duration, sever bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.rng.Float64() < fi.plan.SeverProb {
		return false, 0, true
	}
	if fi.rng.Float64() < fi.plan.DropProb {
		return true, 0, false
	}
	if fi.rng.Float64() < fi.plan.DelayProb {
		d := time.Duration(fi.rng.Int63n(int64(fi.plan.MaxDelay))) + 1
		return false, d, false
	}
	return false, 0, false
}

// FaultyConn is a net.Conn that injects seeded faults into writes: each
// write (one protocol message, for the newline-delimited codec) may be
// dropped, delayed, or replaced by severing the connection. Reads pass
// through untouched — the peer's injector models the reverse direction.
type FaultyConn struct {
	net.Conn
	inj     *FaultInjector
	severed atomic.Bool
}

// Write applies the injector's fault decision to one message write.
func (fc *FaultyConn) Write(p []byte) (int, error) {
	if fc.severed.Load() {
		return 0, net.ErrClosed
	}
	drop, delay, sever := fc.inj.draw()
	switch {
	case sever:
		fc.inj.severs.Add(1)
		if m := fc.inj.met; m != nil {
			m.faultSevers.Inc()
		}
		fc.Sever()
		return 0, fmt.Errorf("%w: injected sever", net.ErrClosed)
	case drop:
		fc.inj.drops.Add(1)
		if m := fc.inj.met; m != nil {
			m.faultDrops.Inc()
		}
		return len(p), nil // pretend success; the message is gone
	case delay > 0:
		fc.inj.delays.Add(1)
		if m := fc.inj.met; m != nil {
			m.faultDelays.Inc()
		}
		time.Sleep(delay)
	}
	return fc.Conn.Write(p)
}

// Sever force-closes the underlying connection, simulating a hard link
// failure. Subsequent writes fail immediately.
func (fc *FaultyConn) Sever() {
	if fc.severed.CompareAndSwap(false, true) {
		_ = fc.Conn.Close()
	}
}
