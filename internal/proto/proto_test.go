package proto

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"spotdc/internal/core"
)

func silentLogf(string, ...interface{}) {}

// testRacks resolves four rack IDs.
func testResolver() RackResolver {
	racks := map[string]int{"S-1": 0, "S-2": 1, "O-1": 2, "O-2": 3}
	return func(id string) (int, bool) {
		i, ok := racks[id]
		return i, ok
	}
}

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", testResolver())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silentLogf)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewCodec(a), NewCodec(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		_ = ca.Send(Message{Type: TypeBid, Tenant: "t", Slot: 3, Bids: []RackBid{{Rack: "S-1", DMax: 50, QMin: 0.1, DMin: 10, QMax: 0.4}}})
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeBid || got.Tenant != "t" || got.Slot != 3 || len(got.Bids) != 1 {
		t.Errorf("got %+v", got)
	}
	if got.Bids[0].DMax != 50 || got.Bids[0].QMax != 0.4 {
		t.Errorf("bid %+v", got.Bids[0])
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	a, b := net.Pipe()
	cb := NewCodec(b)
	defer cb.Close()
	go func() {
		a.Write([]byte("this is not json\n"))
		a.Close()
	}()
	if _, err := cb.Recv(); !errors.Is(err, ErrProtocol) {
		t.Errorf("garbage accepted: %v", err)
	}
}

func TestCodecMissingType(t *testing.T) {
	a, b := net.Pipe()
	cb := NewCodec(b)
	defer cb.Close()
	go func() {
		a.Write([]byte(`{"tenant":"x"}` + "\n"))
		a.Close()
	}()
	if _, err := cb.Recv(); !errors.Is(err, ErrProtocol) {
		t.Errorf("typeless message accepted: %v", err)
	}
}

func TestCodecEOF(t *testing.T) {
	a, b := net.Pipe()
	cb := NewCodec(b)
	defer cb.Close()
	a.Close()
	if _, err := cb.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestDialAndHello(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1", "O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tenant() != "tenant-a" {
		t.Errorf("tenant = %s", c.Tenant())
	}
	// The session registers.
	deadlineAt := time.Now().Add(time.Second)
	for {
		if ss := s.Sessions(); len(ss) == 1 && ss[0] == "tenant-a" {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("session not registered: %v", s.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDialUnknownRackRejected(t *testing.T) {
	s := newServer(t)
	if _, err := Dial(s.Addr(), "tenant-a", []string{"NOPE"}); err == nil {
		t.Fatal("unknown rack accepted")
	} else if !strings.Contains(err.Error(), "unknown rack") {
		t.Errorf("err = %v", err)
	}
}

func TestDialDuplicateTenantRejected(t *testing.T) {
	s := newServer(t)
	c1, err := Dial(s.Addr(), "dup", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Dial(s.Addr(), "dup", []string{"S-2"}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
}

func TestDialEmptyTenant(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "", nil); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestBidSubmissionAndCollection(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1", "O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SubmitBids(7, []RackBid{
		{Rack: "S-1", DMax: 40, QMin: 0.2, DMin: 20, QMax: 0.5},
		{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 5, QMax: 0.16},
	})
	if err != nil {
		t.Fatal(err)
	}
	bids := awaitBids(t, s, 7, 2)
	if len(bids) != 2 {
		t.Fatalf("bids = %d", len(bids))
	}
	byRack := map[int]core.Bid{}
	for _, b := range bids {
		byRack[b.Rack] = b
	}
	if b, ok := byRack[0]; !ok || b.Tenant != "tenant-a" || b.Fn.MaxDemand() != 40 {
		t.Errorf("S-1 bid: %+v", byRack[0])
	}
	if b, ok := byRack[2]; !ok || b.Fn.MaxPrice() != 0.16 {
		t.Errorf("O-1 bid: %+v", byRack[2])
	}
	// Bids are drained: second take is empty.
	if again := s.TakeBids(7); len(again) != 0 {
		t.Errorf("bids not drained: %v", again)
	}
}

// awaitBids waits until want bids are buffered for the slot (submission is
// asynchronous over TCP), then drains them with a single TakeBids.
func awaitBids(t *testing.T, s *Server, slot, want int) []core.Bid {
	t.Helper()
	deadlineAt := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadlineAt) && s.BufferedBids(slot) < want {
		time.Sleep(5 * time.Millisecond)
	}
	// Drain exactly once: TakeBids advances the market position, after which
	// further submissions for the slot are rejected as stale.
	return s.TakeBids(slot)
}

func TestBidResubmissionReplaces(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 10, QMax: 0.1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 30, QMax: 0.3}}); err != nil {
		t.Fatal(err)
	}
	// Allow both to land, then confirm only the replacement remains.
	time.Sleep(100 * time.Millisecond)
	bids := s.TakeBids(1)
	if len(bids) != 1 || bids[0].Fn.MaxDemand() != 30 {
		t.Errorf("bids = %+v, want single replaced bid of 30 W", bids)
	}
}

func TestStaleBidsDropped(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 10, QMax: 0.1}}); err != nil {
		t.Fatal(err)
	}
	awaitBids(t, s, 1, 1) // ensure it landed... then resubmit for slot 1
	if err := c.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 10, QMax: 0.1}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	// Collecting slot 5 drops the stale slot-1 bid.
	if bids := s.TakeBids(5); len(bids) != 0 {
		t.Errorf("slot 5 bids = %v", bids)
	}
	if bids := s.TakeBids(1); len(bids) != 0 {
		t.Errorf("stale bids survived: %v", bids)
	}
}

func TestInvalidBidRejected(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// DMin > DMax is invalid; the server must reject and reply with error.
	if err := c.SubmitBids(2, []RackBid{{Rack: "S-1", DMax: 5, DMin: 50, QMax: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AwaitPrice(2, time.Second); !errors.Is(err, ErrProtocol) {
		t.Errorf("expected protocol error reply, got %v", err)
	}
	if bids := s.TakeBids(2); len(bids) != 0 {
		t.Errorf("invalid bid stored: %v", bids)
	}
	// Unregistered rack likewise.
	if err := c.SubmitBids(3, []RackBid{{Rack: "O-1", DMax: 5, QMax: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AwaitPrice(3, time.Second); !errors.Is(err, ErrProtocol) {
		t.Errorf("expected protocol error for unregistered rack, got %v", err)
	}
}

func TestBroadcastDeliversGrants(t *testing.T) {
	s := newServer(t)
	rackIDs := []string{"S-1", "S-2", "O-1", "O-2"}
	a, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(s.Addr(), "tenant-b", []string{"O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitSessions(t, s, 2)

	allocs := []core.Allocation{
		{Rack: 0, Tenant: "tenant-a", Watts: 25},
		{Rack: 2, Tenant: "tenant-b", Watts: 40},
	}
	s.Broadcast(4, 0.21, allocs, func(i int) string { return rackIDs[i] })

	priceA, grantsA, err := a.AwaitPrice(4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if priceA != 0.21 || len(grantsA) != 1 || grantsA[0].Rack != "S-1" || grantsA[0].Watts != 25 {
		t.Errorf("tenant-a: %v %v", priceA, grantsA)
	}
	priceB, grantsB, err := b.AwaitPrice(4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if priceB != 0.21 || len(grantsB) != 1 || grantsB[0].Rack != "O-1" || grantsB[0].Watts != 40 {
		t.Errorf("tenant-b: %v %v", priceB, grantsB)
	}
}

func TestAwaitPriceTimeoutMeansNoSpot(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.AwaitPrice(9, 150*time.Millisecond); !errors.Is(err, ErrNoPrice) {
		t.Errorf("want ErrNoPrice, got %v", err)
	}
}

func TestAwaitPriceSkipsStaleAndHeartbeats(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)
	if err := c.HeartBeat(1); err != nil { // triggers a heartbeat reply
		t.Fatal(err)
	}
	s.Broadcast(1, 0.1, nil, func(int) string { return "" }) // stale
	s.Broadcast(2, 0.3, nil, func(int) string { return "" }) // the one we want
	price, _, err := c.AwaitPrice(2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if price != 0.3 {
		t.Errorf("price = %v", price)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), "tenant-a", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSessions(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Communication loss → the tenant sees no price and defaults to no
	// spot capacity (Section III-C).
	if _, _, err := c.AwaitPrice(1, 500*time.Millisecond); err == nil {
		t.Error("expected failure after server close")
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func waitSessions(t *testing.T, s *Server, n int) {
	t.Helper()
	deadlineAt := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadlineAt) {
		if len(s.Sessions()) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("only %d sessions", len(s.Sessions()))
}

func TestEndToEndMarketRound(t *testing.T) {
	// A miniature Fig. 5 round: two remote tenants bid, the operator-side
	// clears with core.Market, and grants flow back.
	s := newServer(t)
	rackIDs := []string{"S-1", "S-2", "O-1", "O-2"}
	a, err := Dial(s.Addr(), "sprint", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(s.Addr(), "opp", []string{"O-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.SubmitBids(0, []RackBid{{Rack: "S-1", DMax: 30, QMin: 0.2, DMin: 25, QMax: 0.45}}); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitBids(0, []RackBid{{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 5, QMax: 0.16}}); err != nil {
		t.Fatal(err)
	}
	bids := awaitBids(t, s, 0, 2)
	if len(bids) != 2 {
		t.Fatalf("bids = %d", len(bids))
	}
	mkt, err := core.NewMarket(core.Constraints{
		RackHeadroom: []float64{60, 50, 60, 50},
		RackPDU:      []int{0, 0, 0, 0},
		PDUSpot:      []float64{100},
		UPSSpot:      100,
	}, core.Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mkt.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	s.Broadcast(0, res.Price, res.Allocations, func(i int) string { return rackIDs[i] })

	priceA, grantsA, err := a.AwaitPrice(0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if priceA != res.Price {
		t.Errorf("sprint price %v != clearing %v", priceA, res.Price)
	}
	totalA := 0.0
	for _, g := range grantsA {
		totalA += g.Watts
	}
	if totalA <= 0 {
		t.Error("sprint tenant got nothing despite available spot")
	}
	if _, _, err := b.AwaitPrice(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}
