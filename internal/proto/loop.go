package proto

import (
	"errors"
	"fmt"
	"time"

	"spotdc/internal/operator"
	"spotdc/internal/power"
)

// SlotClock implements the Fig. 6 timing discipline: wall-clock time is
// divided into fixed slots; bids for slot t are due before the slot
// starts, the market clears at the boundary, and the allocation is valid
// for the whole slot.
type SlotClock struct {
	epoch time.Time
	slot  time.Duration
}

// NewSlotClock builds a clock with the given slot length, anchored at
// epoch.
func NewSlotClock(epoch time.Time, slotLen time.Duration) (*SlotClock, error) {
	if slotLen <= 0 {
		return nil, fmt.Errorf("%w: slot length %v", ErrProtocol, slotLen)
	}
	return &SlotClock{epoch: epoch, slot: slotLen}, nil
}

// SlotLen returns the slot duration.
func (c *SlotClock) SlotLen() time.Duration { return c.slot }

// SlotAt returns the slot index containing t (negative before the epoch).
func (c *SlotClock) SlotAt(t time.Time) int {
	d := t.Sub(c.epoch)
	idx := int(d / c.slot)
	if d < 0 && d%c.slot != 0 {
		idx--
	}
	return idx
}

// StartOf returns the wall-clock start of a slot.
func (c *SlotClock) StartOf(slot int) time.Time {
	return c.epoch.Add(time.Duration(slot) * c.slot)
}

// BidDeadline returns the last moment bids for the slot are accepted: the
// slot's start (bids arrive during the preceding slot, per Fig. 6).
func (c *SlotClock) BidDeadline(slot int) time.Time { return c.StartOf(slot) }

// MarketLoop drives the operator's Algorithm 1 over the network: each
// slot boundary it collects the slot's bids from the server, predicts spot
// capacity from the supplied reading, clears, and broadcasts price and
// grants. It is the tested core of cmd/spotdc-operator.
type MarketLoop struct {
	// Server is the protocol endpoint tenants connect to.
	Server *Server
	// Operator clears the market and bills.
	Operator *operator.Operator
	// Clock provides slot timing.
	Clock *SlotClock
	// Reading supplies the rack-level power snapshot for a slot (the
	// operator's routine monitoring).
	Reading func(slot int) power.Reading
	// RackID maps market rack indices to wire IDs.
	RackID func(rack int) string
	// OnSlot, if non-nil, observes every completed slot.
	OnSlot func(slot int, out operator.SlotOutcome, bids int)
}

// validate checks the loop wiring.
func (l *MarketLoop) validate() error {
	switch {
	case l.Server == nil:
		return errors.New("proto: market loop needs a server")
	case l.Operator == nil:
		return errors.New("proto: market loop needs an operator")
	case l.Clock == nil:
		return errors.New("proto: market loop needs a clock")
	case l.Reading == nil:
		return errors.New("proto: market loop needs a reading source")
	case l.RackID == nil:
		return errors.New("proto: market loop needs a rack-ID mapper")
	}
	return nil
}

// RunSlots executes the loop for the given slots, sleeping until each
// slot's boundary. For simulation-speed tests use a clock with millisecond
// slots. It returns the number of slots that cleared successfully.
func (l *MarketLoop) RunSlots(fromSlot, slots int) (int, error) {
	if err := l.validate(); err != nil {
		return 0, err
	}
	if slots <= 0 {
		return 0, fmt.Errorf("%w: slots %d", ErrProtocol, slots)
	}
	slotHours := l.Clock.SlotLen().Hours()
	cleared := 0
	for slot := fromSlot; slot < fromSlot+slots; slot++ {
		if wait := time.Until(l.Clock.StartOf(slot)); wait > 0 {
			time.Sleep(wait)
		}
		bids := l.Server.TakeBids(slot)
		out, err := l.Operator.RunSlot(bids, l.Reading(slot), slotHours)
		if err != nil {
			return cleared, fmt.Errorf("proto: slot %d: %w", slot, err)
		}
		l.Server.Broadcast(slot, out.Result.Price, out.Result.Allocations, l.RackID)
		if l.OnSlot != nil {
			l.OnSlot(slot, out, len(bids))
		}
		cleared++
	}
	return cleared, nil
}
