package proto

import (
	"errors"
	"fmt"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/otrace"
	"spotdc/internal/power"
)

// ErrBreakerOpen reports that the market loop's circuit breaker is open:
// after too many consecutive slot failures the loop degrades to
// PowerCapped-equivalent behavior (no spot capacity sold) instead of
// hammering a failing operator.
var ErrBreakerOpen = errors.New("proto: market circuit breaker open")

// SlotClock implements the Fig. 6 timing discipline: wall-clock time is
// divided into fixed slots; bids for slot t are due before the slot
// starts, the market clears at the boundary, and the allocation is valid
// for the whole slot.
type SlotClock struct {
	epoch time.Time
	slot  time.Duration
}

// NewSlotClock builds a clock with the given slot length, anchored at
// epoch.
func NewSlotClock(epoch time.Time, slotLen time.Duration) (*SlotClock, error) {
	if slotLen <= 0 {
		return nil, fmt.Errorf("%w: slot length %v", ErrProtocol, slotLen)
	}
	return &SlotClock{epoch: epoch, slot: slotLen}, nil
}

// SlotLen returns the slot duration.
func (c *SlotClock) SlotLen() time.Duration { return c.slot }

// SlotAt returns the slot index containing t (negative before the epoch).
func (c *SlotClock) SlotAt(t time.Time) int {
	d := t.Sub(c.epoch)
	idx := int(d / c.slot)
	if d < 0 && d%c.slot != 0 {
		idx--
	}
	return idx
}

// StartOf returns the wall-clock start of a slot.
func (c *SlotClock) StartOf(slot int) time.Time {
	return c.epoch.Add(time.Duration(slot) * c.slot)
}

// BidDeadline returns the last moment bids for the slot are accepted: the
// slot's start (bids arrive during the preceding slot, per Fig. 6).
func (c *SlotClock) BidDeadline(slot int) time.Time { return c.StartOf(slot) }

// MarketLoop drives the operator's Algorithm 1 over the network: each
// slot boundary it collects the slot's bids from the server, predicts spot
// capacity from the supplied reading, clears, and broadcasts price and
// grants. It is the tested core of cmd/spotdc-operator.
//
// Failure semantics follow Section III-C: a slot whose clearing fails
// degrades to the safe default — a zero-price, no-grant broadcast, so every
// connected tenant runs without spot capacity for that slot — and the loop
// continues. A market must never stop because one slot went bad. A
// configurable circuit breaker additionally trips the loop into sustained
// PowerCapped-equivalent behavior after too many consecutive failures.
type MarketLoop struct {
	// Server is the protocol endpoint tenants connect to.
	Server *Server
	// Operator clears the market and bills.
	Operator *operator.Operator
	// Clock provides slot timing.
	Clock *SlotClock
	// Reading supplies the rack-level power snapshot for a slot (the
	// operator's routine monitoring).
	Reading func(slot int) power.Reading
	// RackID maps market rack indices to wire IDs.
	RackID func(rack int) string
	// OnSlot, if non-nil, observes every successfully cleared slot.
	OnSlot func(slot int, out operator.SlotOutcome, bids int)
	// OnSlotError, if non-nil, observes every degraded slot: err is the
	// clearing failure, or ErrBreakerOpen for slots skipped while the
	// breaker is open.
	OnSlotError func(slot int, err error)
	// MaxConsecutiveFailures trips the circuit breaker after this many
	// consecutive slot failures (0 disables the breaker: every slot
	// retries clearing). While open, slots degrade without touching the
	// operator — PowerCapped-equivalent behavior.
	MaxConsecutiveFailures int
	// BreakerCooldownSlots, when the breaker is open, lets one probe slot
	// attempt clearing after this many degraded slots (half-open retry);
	// success closes the breaker. 0 keeps the breaker open for the rest of
	// the run once tripped.
	BreakerCooldownSlots int
	// Journal, if non-nil, receives one structured SlotEvent per slot —
	// cleared or degraded — as a JSON line (the operator's after-the-fact
	// record; /metrics is the live aggregate view). A nil Journal is free.
	Journal *metrics.Journal
	// FaultCounts, if non-nil, supplies the cumulative injected-fault
	// counts stamped onto each journal event (harnesses wire it to their
	// FaultInjector.Stats; the hook indirection keeps the metrics package
	// free of protocol types).
	FaultCounts func() (drops, delays, severs int64)
	// CheckEmergencies runs the operator's emergency observation on every
	// cleared slot's reading (Section III-C): excursions are counted, and —
	// when the operator has a responder configured — reclamation plans are
	// issued and their budget resets pushed to the owning tenants *before*
	// the price broadcast, so a tenant caps within the same slot it is
	// granted in. Degraded slots are skipped (their readings may be
	// corrupt). Off by default: the historical loop never observed
	// emergencies over the network.
	CheckEmergencies bool
	// BreakerTolerance is the excursion fraction breakers ride through
	// (e.g. 0.05); only used when CheckEmergencies is set.
	BreakerTolerance float64
	// Durable, if non-nil, write-ahead-logs every slot before its broadcast
	// and snapshots periodically, making the operator's books and market
	// position crash-recoverable (durable.go). A nil Durable keeps the
	// historical in-memory-only behavior.
	Durable *Durable
	// Stop, if non-nil, ends RunSlots early at the next slot boundary when
	// closed — the graceful-shutdown hook: in-flight slots finish, commit,
	// and broadcast before the loop returns. A nil channel never fires.
	Stop <-chan struct{}
	// BeforeBids, if non-nil, runs after each slot boundary and before the
	// slot's bids are drained. Deterministic harnesses use it to quiesce
	// bid arrival (wait for in-flight submissions to land) so that two runs
	// of the same seed drain identical bid sets.
	BeforeBids func(slot int)
	// Tracer, if non-nil, opens one root span per slot with children for
	// the bid-window drain, the operator's predict/clear/audit stages,
	// emergency observation, the WAL commit, and the broadcast fan-out
	// (DESIGN §4i). Degraded, breaker-open, and emergency slots are
	// force-sampled. Wire the same tracer into ServerOptions.Tracer (send
	// spans) and operator Config.Tracer (stage spans). Nil is free.
	Tracer *otrace.Tracer

	// Internal degradation state; read them only after RunSlots returns
	// (or from OnSlot/OnSlotError callbacks, which run on the loop
	// goroutine).
	slotErrors  int
	consecFails int
	tripped     bool
	cooldown    int
	curTrace    otrace.SpanContext
}

// SlotErrors returns how many slots degraded to the no-spot default
// (including slots skipped while the breaker was open).
func (l *MarketLoop) SlotErrors() int { return l.slotErrors }

// BreakerTripped reports whether the circuit breaker is currently open.
func (l *MarketLoop) BreakerTripped() bool { return l.tripped }

// SlotTrace returns the current slot's trace context (zero when no
// tracer is wired). Valid on the loop goroutine — i.e. from OnSlot and
// OnSlotError callbacks — which is where slot-scoped log lines join
// their `trace=` field from.
func (l *MarketLoop) SlotTrace() otrace.SpanContext { return l.curTrace }

// validate checks the loop wiring.
func (l *MarketLoop) validate() error {
	switch {
	case l.Server == nil:
		return errors.New("proto: market loop needs a server")
	case l.Operator == nil:
		return errors.New("proto: market loop needs an operator")
	case l.Clock == nil:
		return errors.New("proto: market loop needs a clock")
	case l.Reading == nil:
		return errors.New("proto: market loop needs a reading source")
	case l.RackID == nil:
		return errors.New("proto: market loop needs a rack-ID mapper")
	case l.MaxConsecutiveFailures < 0:
		return fmt.Errorf("proto: MaxConsecutiveFailures %d negative", l.MaxConsecutiveFailures)
	case l.BreakerCooldownSlots < 0:
		return fmt.Errorf("proto: BreakerCooldownSlots %d negative", l.BreakerCooldownSlots)
	case l.BreakerTolerance < 0:
		return fmt.Errorf("proto: BreakerTolerance %v negative", l.BreakerTolerance)
	}
	if l.Durable != nil {
		return l.Durable.validate()
	}
	return nil
}

// degrade applies the Section III-C safe default for a failed slot: an
// explicit zero-price, no-grant broadcast (so tenants learn "no spot
// capacity" immediately instead of waiting out their price timeout) and
// the failure is recorded.
func (l *MarketLoop) degrade(slot, bids int, err error, root *otrace.Span) {
	l.slotErrors++
	// Degraded and breaker-open slots are exactly the ones worth a trace:
	// force the whole slot trace past head sampling (DESIGN §4i).
	root.ForceSample()
	root.SetBool("degraded", true)
	root.SetStr("error", err.Error())
	if l.Durable != nil {
		// Degraded slots commit too (with no books delta): recovery must know
		// the slot was consumed, or a restart would re-run it against a
		// journal that already recorded the degradation.
		ws := l.Tracer.StartChild("wal_commit", root)
		l.Durable.commitSlot(l.Operator, l.Server, slot, nil)
		ws.End()
	}
	bs := l.Tracer.StartChild("broadcast", root)
	l.Server.BroadcastTraced(slot, 0, nil, l.RackID, bs)
	bs.End()
	om := l.Operator.Metrics()
	if errors.Is(err, ErrBreakerOpen) {
		root.SetBool("breaker_open", true)
		om.ObserveBreakerOpenSlot()
	} else {
		om.ObserveDegradedSlot()
	}
	l.appendJournal(metrics.SlotEvent{Slot: slot, Bids: bids, Degraded: true, Err: err.Error()})
	if l.OnSlotError != nil {
		l.OnSlotError(slot, err)
	}
	root.End()
}

// appendJournal stamps and writes one slot event; a nil Journal is free.
// Journal write errors are sticky inside the Journal and must never stop
// the market, so the append result is deliberately dropped here.
func (l *MarketLoop) appendJournal(ev metrics.SlotEvent) {
	if l.Journal == nil {
		return
	}
	ev.UnixMicros = time.Now().UnixMicro()
	if l.FaultCounts != nil {
		ev.FaultDrops, ev.FaultDelays, ev.FaultSevers = l.FaultCounts()
	}
	_ = l.Journal.Append(ev)
}

// writeJournalHeader lazily writes the schema-v2 header as the journal's
// first line: the static half of a deterministic replay (topology, market
// options, prediction factor, slot length). Wired here rather than at
// journal construction so the journal package stays free of operator and
// power types.
func (l *MarketLoop) writeJournalHeader() {
	if l.Journal == nil || l.Journal.HasHeader() {
		return
	}
	topo := l.Operator.Topology()
	mo := l.Operator.MarketOptions()
	h := metrics.JournalHeader{
		UPSCapacity:     topo.UPSCapacity,
		PDUCapacity:     make([]float64, len(topo.PDUs)),
		Racks:           make([]metrics.JournalRack, len(topo.Racks)),
		PriceStep:       mo.PriceStep,
		ReservePrice:    mo.ReservePrice,
		Ration:          mo.Ration,
		Algorithm:       mo.Algorithm.String(),
		UnderPrediction: l.Operator.PredictOptions().UnderPredictionFactor,
		SlotHours:       l.Clock.SlotLen().Hours(),
	}
	if l.CheckEmergencies {
		h.BreakerTolerance = l.BreakerTolerance
		if rc, on := l.Operator.EmergencyResponder(); on {
			h.EmergencyResponder = true
			h.EmergencyEscalation = rc.EscalationSeverity
		}
	}
	for i, p := range topo.PDUs {
		h.PDUCapacity[i] = p.Capacity
	}
	for i, r := range topo.Racks {
		h.Racks[i] = metrics.JournalRack{
			ID: r.ID, Tenant: r.Tenant, PDU: r.PDU,
			Guaranteed: r.Guaranteed, Headroom: r.SpotHeadroom,
		}
	}
	_ = l.Journal.Header(h)
}

// captureInputs fills the event's schema-v2 full-input fields for a cleared
// slot: the bids, the reading (copied — harnesses reuse reading buffers
// across slots), the predicted spot capacities, and the grants. Degraded
// slots are not captured: their readings may hold NaN, which JSON cannot
// encode, and their outcome (no grants, no revenue) is fully described by
// the v1 fields plus Err.
func captureInputs(ev *metrics.SlotEvent, bids []core.Bid, rd power.Reading, out operator.SlotOutcome) {
	ev.Algorithm = out.Result.Algorithm.String()
	ev.Evaluations = out.Result.Evaluations
	ev.PDUSpot = append([]float64(nil), out.Spot.PDUWatts...)
	ev.UPSSpot = out.Spot.UPSWatts
	ev.RackWatts = append([]float64(nil), rd.RackWatts...)
	ev.OtherPDUWatts = append([]float64(nil), rd.OtherPDUWatts...)
	if len(bids) > 0 {
		ev.BidSet = make([]metrics.BidRecord, 0, len(bids))
		for _, b := range bids {
			lb, ok := b.Fn.(core.LinearBid)
			if !ok {
				// A demand function with no four-parameter wire form cannot
				// be journaled; mark the capture partial so replay falls
				// back to outcome-level checks.
				ev.BidSet = nil
				ev.InputsTruncated = true
				break
			}
			ev.BidSet = append(ev.BidSet, metrics.BidRecord{
				Rack: b.Rack, Tenant: b.Tenant,
				DMax: lb.DMax, DMin: lb.DMin, QMin: lb.QMin, QMax: lb.QMax,
			})
		}
	}
	if n := ev.Grants; n > 0 {
		ev.GrantSet = make([]metrics.GrantRecord, 0, n)
		for _, a := range out.Result.Allocations {
			if a.Watts > 0 {
				ev.GrantSet = append(ev.GrantSet, metrics.GrantRecord{Rack: a.Rack, Watts: a.Watts})
			}
		}
	}
}

// captureEmergency fills the event's responder fields: the suspensions
// applied to this slot's prediction (RunSlot), and the reclaims/restores
// the responder issued from this slot's reading (ObserveEmergencies). All
// empty when the responder is off, keeping such journals byte-identical.
func captureEmergency(ev *metrics.SlotEvent, op *operator.Operator) {
	pdus, ups := op.AppliedSuspensions()
	if len(pdus) > 0 {
		ev.SuspendedPDUs = append([]int(nil), pdus...)
	}
	ev.SuspendedUPS = ups
	for _, plan := range op.LastReclaims() {
		rec := metrics.ReclaimRecord{
			Level: plan.Level, PDU: plan.PDU,
			LoadWatts: plan.Load, CapacityWatts: plan.Capacity,
			SpotCutWatts: plan.SpotReclaimed, GuaranteedCutWatts: plan.GuaranteedReclaimed,
			Escalated: plan.Escalated,
		}
		for _, t := range plan.Targets {
			rec.Budgets = append(rec.Budgets, metrics.BudgetRecord{
				Rack: t.Rack, BudgetWatts: t.BudgetWatts,
				SpotCut: t.SpotCut, GuaranteedCut: t.GuaranteedCut,
			})
		}
		ev.Reclaims = append(ev.Reclaims, rec)
	}
	for _, plan := range op.LastRestores() {
		if plan.PDU < 0 {
			ev.RestoredUPS = true
		} else {
			ev.RestoredPDUs = append(ev.RestoredPDUs, plan.PDU)
		}
	}
}

// collectBudgetResets merges the responder's latest reclaims and restores
// into per-rack budgets for one budget_reset broadcast. Reclaims are
// inserted first and restores after, matching the order the operator
// applied its own hooks in, so the tenant-side and operator-side budgets
// for a rack always agree.
func collectBudgetResets(op *operator.Operator) map[int]float64 {
	reclaims, restores := op.LastReclaims(), op.LastRestores()
	if len(reclaims) == 0 && len(restores) == 0 {
		return nil
	}
	budgets := make(map[int]float64)
	for _, plan := range reclaims {
		for _, t := range plan.Targets {
			budgets[t.Rack] = t.BudgetWatts
		}
	}
	for _, plan := range restores {
		for _, t := range plan.Targets {
			budgets[t.Rack] = t.BudgetWatts
		}
	}
	return budgets
}

// RunSlots executes the loop for the given slots, sleeping until each
// slot's boundary. For simulation-speed tests use a clock with millisecond
// slots. It returns the number of slots that cleared successfully; slots
// whose clearing failed degrade to a zero-price broadcast and are counted
// by SlotErrors. The returned error is non-nil only for configuration
// errors — per-slot failures never stop the market.
func (l *MarketLoop) RunSlots(fromSlot, slots int) (int, error) {
	if err := l.validate(); err != nil {
		return 0, err
	}
	if slots <= 0 {
		return 0, fmt.Errorf("%w: slots %d", ErrProtocol, slots)
	}
	slotHours := l.Clock.SlotLen().Hours()
	l.writeJournalHeader()
	cleared := 0
	for slot := fromSlot; slot < fromSlot+slots; slot++ {
		select {
		case <-l.Stop:
			return cleared, nil
		default:
		}
		if wait := time.Until(l.Clock.StartOf(slot)); wait > 0 {
			select {
			case <-l.Stop:
				return cleared, nil
			case <-time.After(wait):
			}
		}
		root := l.Tracer.StartRoot("slot", slot)
		l.curTrace = root.Context()
		bd := l.Tracer.StartChild("bid_drain", root)
		if l.BeforeBids != nil {
			l.BeforeBids(slot)
		}
		// Always drain the slot's bids, even when degraded: collection
		// advances the acceptance window and prunes the bid map.
		bids := l.Server.TakeBids(slot)
		bd.SetInt("bids", int64(len(bids)))
		bd.End()
		root.SetInt("bids", int64(len(bids)))
		if l.tripped {
			if l.BreakerCooldownSlots == 0 || l.cooldown > 0 {
				if l.cooldown > 0 {
					l.cooldown--
				}
				l.degrade(slot, len(bids), ErrBreakerOpen, root)
				continue
			}
			// Half-open: fall through and let this slot probe the market.
		}
		rd := l.Reading(slot)
		l.Operator.SetTraceParent(root)
		out, err := l.Operator.RunSlot(bids, rd, slotHours)
		l.Operator.SetTraceParent(nil)
		if err != nil {
			l.consecFails++
			if l.MaxConsecutiveFailures > 0 && l.consecFails >= l.MaxConsecutiveFailures {
				l.tripped = true
				l.cooldown = l.BreakerCooldownSlots
				l.Operator.Metrics().SetBreakerOpen(true)
			}
			l.degrade(slot, len(bids), fmt.Errorf("proto: slot %d: %w", slot, err), root)
			continue
		}
		l.consecFails = 0
		if l.tripped {
			l.Operator.Metrics().SetBreakerOpen(false)
		}
		l.tripped = false
		emergencyChecked := false
		if l.CheckEmergencies {
			// Observe the slot's realized reading; with a responder this
			// plans reclamation and applies operator-side budget resets.
			// Tenant-side resets go out before the price broadcast so a
			// capping tenant reacts within the same slot.
			es := l.Tracer.StartChild("emergencies", root)
			before := l.Operator.EmergencySlots()
			l.Operator.ObserveEmergencies(rd, l.BreakerTolerance)
			if l.Operator.EmergencySlots() > before {
				// Emergency slots are force-sampled: the excursion and its
				// reclamation are what the trace is for.
				es.SetBool("emergency", true)
				root.ForceSample()
			}
			es.End()
			emergencyChecked = true
		}
		if l.Durable != nil {
			// Commit point: the slot's books delta and post-slot responder
			// state hit the WAL before any tenant hears the outcome, so a
			// crash on either side of the broadcast recovers consistently.
			ws := l.Tracer.StartChild("wal_commit", root)
			if l.Durable.OnCommit != nil {
				l.Durable.OnCommit(slot, out)
			}
			commit := l.Operator.LastSlotCommit(out, slotHours)
			l.Durable.commitSlot(l.Operator, l.Server, slot, &commit)
			ws.End()
		}
		bs := l.Tracer.StartChild("broadcast", root)
		if emergencyChecked {
			if budgets := collectBudgetResets(l.Operator); len(budgets) > 0 {
				l.Server.BroadcastBudgetResetTraced(slot, budgets, bs)
			}
		}
		l.Server.BroadcastTraced(slot, out.Result.Price, out.Result.Allocations, l.RackID, bs)
		bs.End()
		root.SetFloat("price", out.Result.Price)
		root.SetFloat("sold_watts", out.Result.TotalWatts)
		if l.Journal != nil {
			grants := 0
			for _, a := range out.Result.Allocations {
				if a.Watts > 0 {
					grants++
				}
			}
			ev := metrics.SlotEvent{
				Slot:        slot,
				Price:       out.Result.Price,
				SoldWatts:   out.Result.TotalWatts,
				Revenue:     out.RevenueThisSlot,
				Grants:      grants,
				Bids:        len(bids),
				ClearMicros: out.ClearDuration.Microseconds(),
			}
			captureInputs(&ev, bids, rd, out)
			if emergencyChecked {
				captureEmergency(&ev, l.Operator)
			}
			l.appendJournal(ev)
		}
		if l.OnSlot != nil {
			l.OnSlot(slot, out, len(bids))
		}
		root.End()
		cleared++
	}
	return cleared, nil
}
