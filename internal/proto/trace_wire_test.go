package proto

import (
	"strings"
	"testing"
	"unicode/utf8"

	"spotdc/internal/otrace"
)

// Wire propagation of the trace envelope field (DESIGN §4i): JSON carries
// it as an omitempty "trace" key old peers ignore; binary carries it only
// on version-2 frames, negotiated stickily.

func TestJSONTraceRoundTrip(t *testing.T) {
	tp := otrace.FormatTraceparent(otrace.SpanContext{Trace: 0xabc, Span: 0xdef, Sampled: true})
	var buf memStream
	c := NewCodec(&buf)
	m := Message{Type: TypePrice, Tenant: "acme", Slot: 4, Price: 0.05, Trace: tp}
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	// Old JSON peers see a plain extra key; untraced messages omit it.
	raw := buf.String()
	if !strings.Contains(raw, `"trace":"`+tp+`"`) {
		t.Fatalf("trace field not on the wire: %s", raw)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != tp {
		t.Fatalf("Trace = %q, want %q", got.Trace, tp)
	}

	buf.Reset()
	if err := c.Send(Message{Type: TypeHeartBeat, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace") {
		t.Fatalf("untraced message leaked a trace key: %s", buf.String())
	}
}

func TestBinaryV1OmitsTrace(t *testing.T) {
	var buf memStream
	c := NewBinaryCodec(&buf)
	m := Message{Type: TypePrice, Tenant: "acme", Slot: 4, Price: 0.05, Trace: "01-00000000000000ab-00000000000000cd-01"}
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[1]; got != binVersion {
		t.Fatalf("frame version = %d, want v1 without EnableTrace", got)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != "" {
		t.Fatalf("v1 frame carried Trace %q", got.Trace)
	}
	m.Trace = ""
	if got := copyMsg(got); !msgEqual(got, m) {
		t.Fatalf("v1 round trip mismatch:\n sent %+v\n got  %+v", m, got)
	}
}

func TestBinaryV2TraceRoundTrip(t *testing.T) {
	var buf memStream
	c := NewBinaryCodec(&buf)
	c.EnableTrace()
	for _, m := range wireFixtures {
		m.Trace = "01-00000000000000ab-00000000000000cd-01"
		if err := c.Send(m); err != nil {
			t.Fatalf("Send(%+v): %v", m, err)
		}
		if got := buf.Bytes()[1]; got != binVersionTrace {
			t.Fatalf("frame version = %d, want v2", got)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv after %+v: %v", m, err)
		}
		if got.Trace != m.Trace {
			t.Fatalf("Trace = %q, want %q", got.Trace, m.Trace)
		}
		got.Trace, m.Trace = "", ""
		if got := copyMsg(got); !msgEqual(got, m) {
			t.Errorf("v2 round trip mismatch:\n sent %+v\n got  %+v", m, got)
		}
	}
}

func TestBinaryV2EmptyTrace(t *testing.T) {
	var buf memStream
	c := NewBinaryCodec(&buf)
	c.EnableTrace()
	if err := c.Send(Message{Type: TypeHeartBeat, Tenant: "acme", Slot: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != "" || got.Tenant != "acme" || got.Slot != 3 {
		t.Fatalf("v2 empty-trace round trip = %+v", got)
	}
}

// TestBinaryStickyV2Negotiation pins the answer-in-kind upgrade: a codec
// that receives one v2 frame answers v2 for the rest of the session, and a
// codec that only ever sees v1 stays v1.
func TestBinaryStickyV2Negotiation(t *testing.T) {
	var wire memStream
	client := NewBinaryCodec(&wire)
	client.EnableTrace()
	server := NewBinaryCodec(&wire) // shares the buffer: client writes, server reads

	if err := client.Send(Message{Type: TypeHello, Tenant: "acme", Racks: []string{"S-1"}, Trace: "01-00000000000000ab-00000000000000cd-00"}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if !server.v2.Load() {
		t.Fatal("server codec did not upgrade on a v2 frame")
	}
	// The server's answers now carry v2 frames (trace delivered downstream).
	wire.Reset()
	tp := "01-0000000000000011-0000000000000022-01"
	if err := server.Send(Message{Type: TypePrice, Tenant: "acme", Slot: 1, Price: 0.02, Trace: tp}); err != nil {
		t.Fatal(err)
	}
	if got := wire.Bytes()[1]; got != binVersionTrace {
		t.Fatalf("upgraded server sent version %d", got)
	}
	got, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != tp {
		t.Fatalf("client received Trace %q, want %q", got.Trace, tp)
	}

	// A v1-only exchange never upgrades: old clients see v1 forever.
	var wire2 memStream
	old := NewBinaryCodec(&wire2)
	srv2 := NewBinaryCodec(&wire2)
	if err := old.Send(Message{Type: TypeHello, Tenant: "legacy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Recv(); err != nil {
		t.Fatal(err)
	}
	wire2.Reset()
	if err := srv2.Send(Message{Type: TypePrice, Tenant: "legacy", Slot: 1, Trace: tp}); err != nil {
		t.Fatal(err)
	}
	if got := wire2.Bytes()[1]; got != binVersion {
		t.Fatalf("v1 session sent version %d frame", got)
	}
	gotOld, err := old.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if gotOld.Trace != "" {
		t.Fatalf("v1 client received Trace %q", gotOld.Trace)
	}
}

// FuzzTraceFieldRoundTrip drives arbitrary trace strings through both
// encodings: whatever value the envelope carries must survive JSON and a
// v2 binary frame byte-identically (or error cleanly, never panic).
func FuzzTraceFieldRoundTrip(f *testing.F) {
	f.Add("01-00000000000000ab-00000000000000cd-01", "acme", int64(9))
	f.Add("", "t", int64(-1))
	f.Add("not-a-traceparent \x00\xff ünïcode", "tenant", int64(1<<40))
	f.Fuzz(func(t *testing.T, trace, tenant string, slot int64) {
		m := Message{Type: TypeBid, Tenant: tenant, Slot: int(slot), Trace: trace,
			Bids: []RackBid{{Rack: "S-1", DMax: 1, QMax: 2}}}

		var jb memStream
		jc := NewCodec(&jb)
		if err := jc.Send(m); err != nil {
			t.Skip() // oversized line; the codec's business, not the fuzz's
		}
		jm, err := jc.Recv()
		if err != nil {
			t.Fatalf("json Recv: %v", err)
		}
		// JSON transcodes invalid UTF-8 to U+FFFD (encoding/json contract);
		// byte-exactness is only promised for valid UTF-8. Binary promises
		// it unconditionally, below.
		if utf8.ValidString(trace) && jm.Trace != trace {
			t.Fatalf("json Trace = %q, want %q", jm.Trace, trace)
		}

		var bb memStream
		bc := NewBinaryCodec(&bb)
		bc.EnableTrace()
		if err := bc.Send(m); err != nil {
			if len(trace) > 1<<16 || len(tenant) > 1<<16 {
				return // string-field cap; a clean error is the contract
			}
			t.Fatalf("binary Send: %v", err)
		}
		bm, err := bc.Recv()
		if err != nil {
			t.Fatalf("binary Recv: %v", err)
		}
		if bm.Trace != trace {
			t.Fatalf("binary Trace = %q, want %q", bm.Trace, trace)
		}
		if bm.Tenant != tenant || bm.Slot != int(slot) {
			t.Fatalf("binary envelope = %+v, want tenant %q slot %d", bm, tenant, slot)
		}
	})
}
