package proto

import (
	"net"
	"testing"
	"time"
)

// FuzzBinaryCodecRoundTrip feeds arbitrary bytes to the binary frame
// decoder: it must never panic, never return a typeless message, and every
// frame it does accept must re-encode and re-decode to the identical
// message (the round-trip property that keeps mixed fleets honest).
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	for _, m := range wireFixtures {
		var buf memStream
		if err := NewBinaryCodec(&buf).Send(m); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.Bytes()...))
	}
	f.Add([]byte{binMagic, binVersion, binHeartBeat, 0, 0, 0})
	f.Add([]byte{binMagic, 9, 9, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("garbage that is clearly not a frame"))
	f.Fuzz(func(t *testing.T, input []byte) {
		st := &memStream{}
		st.Write(input)
		dec := NewBinaryCodec(st)
		for {
			m, err := dec.Recv()
			if err != nil {
				return // malformed or exhausted: an error, never a panic
			}
			if m.Type == "" {
				t.Fatal("decoder returned a typeless message without error")
			}
			m = copyMsg(m)
			var buf memStream
			re := NewBinaryCodec(&buf)
			if err := re.Send(m); err != nil {
				t.Fatalf("decoded message failed to re-encode: %+v: %v", m, err)
			}
			m2, err := re.Recv()
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %+v: %v", m, err)
			}
			if m2 = copyMsg(m2); !msgEqual(m, m2) {
				t.Fatalf("round-trip mismatch:\n first  %+v\n second %+v", m, m2)
			}
		}
	})
}

// FuzzCodecRecv feeds arbitrary bytes to the wire decoder: it must never
// panic and must either return a typed message or an error.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"bid","tenant":"t","slot":1}` + "\n"))
	f.Add([]byte(`{"type":"hello","tenant":"a","racks":["r1"]}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"tenant":"no-type"}` + "\n"))
	f.Fuzz(func(t *testing.T, input []byte) {
		a, b := net.Pipe()
		defer a.Close()
		codec := NewCodec(b)
		defer codec.Close()
		go func() {
			a.SetDeadline(time.Now().Add(time.Second))
			a.Write(input)
			a.Close()
		}()
		for {
			msg, err := codec.Recv()
			if err != nil {
				return
			}
			if msg.Type == "" {
				t.Fatal("decoder returned a typeless message without error")
			}
		}
	})
}
