package proto

import (
	"net"
	"testing"
	"time"
)

// FuzzCodecRecv feeds arbitrary bytes to the wire decoder: it must never
// panic and must either return a typed message or an error.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"bid","tenant":"t","slot":1}` + "\n"))
	f.Add([]byte(`{"type":"hello","tenant":"a","racks":["r1"]}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"tenant":"no-type"}` + "\n"))
	f.Fuzz(func(t *testing.T, input []byte) {
		a, b := net.Pipe()
		defer a.Close()
		codec := NewCodec(b)
		defer codec.Close()
		go func() {
			a.SetDeadline(time.Now().Add(time.Second))
			a.Write(input)
			a.Close()
		}()
		for {
			msg, err := codec.Recv()
			if err != nil {
				return
			}
			if msg.Type == "" {
				t.Fatal("decoder returned a typeless message without error")
			}
		}
	})
}
