package proto

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/wal"
)

func durableReading(slot int) power.Reading {
	return power.Reading{
		RackWatts:     []float64{120 + float64(slot%4), 100},
		OtherPDUWatts: []float64{180},
	}
}

// runDurableSlots drives the loop over [from, from+n) with a WAL in dir,
// returning the loop (for error inspection) and the operator.
func runDurableSlots(t *testing.T, dir string, op *operator.Operator, srv *Server, topo *power.Topology, from, n, snapshotEvery int) *wal.Log {
	t.Helper()
	log, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverDurable(rec, op, srv); err != nil {
		t.Fatal(err)
	}
	clock, err := NewSlotClock(time.Now().Add(20*time.Millisecond).Add(-time.Duration(from)*5*time.Millisecond), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	loop := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading:  durableReading,
		RackID:   func(r int) string { return topo.Racks[r].ID },
		Durable:  &Durable{Log: log, SnapshotEvery: snapshotEvery},
	}
	if _, err := loop.RunSlots(from, n); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestDurableRecoveryResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference run: 30 slots in one process.
	srvA, opA, topo := loopFixture(t)
	logA := runDurableSlots(t, t.TempDir(), opA, srvA, topo, 0, 30, 8)
	logA.Close()

	// Interrupted run: 12 slots, abrupt kill, recover, 18 more.
	srvB, opB, _ := loopFixture(t)
	logB := runDurableSlots(t, dir, opB, srvB, topo, 0, 12, 8)
	logB.Kill()

	srvC, opC, _ := loopFixture(t)
	logC, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverDurable(rec, opC, srvC)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.NextSlot != 12 {
		t.Fatalf("NextSlot = %d, want 12", recovered.NextSlot)
	}
	if opC.Slots() != 12 || opC.SpotRevenue() != opB.SpotRevenue() {
		t.Fatalf("recovered books differ: slots=%d revenue %v vs %v", opC.Slots(), opC.SpotRevenue(), opB.SpotRevenue())
	}
	if pos, ok := srvC.MarketPosition(); !ok || pos != 11 {
		t.Fatalf("server position = %d/%v, want 11/true", pos, ok)
	}
	logC.Close()

	srvD, opD, _ := loopFixture(t)
	logD := runDurableSlots(t, dir, opD, srvD, topo, 12, 18, 8)
	logD.Close()

	if !reflect.DeepEqual(opA.Checkpoint(), opD.Checkpoint()) {
		t.Fatal("restarted run's final checkpoint differs from uninterrupted run")
	}
	if opA.SpotRevenue() != opD.SpotRevenue() || opA.SpotEnergyKWh() != opD.SpotEnergyKWh() {
		t.Fatal("restarted books not bit-identical")
	}
}

func TestDurableSnapshotBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	srv, op, topo := loopFixture(t)
	log := runDurableSlots(t, dir, op, srv, topo, 0, 25, 10)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil {
		t.Fatal("no snapshot after 25 slots with SnapshotEvery=10")
	}
	// Snapshot at slot 19 (after 20 commits): at most 5 slot records replay.
	if len(rec.Records) >= 25 {
		t.Fatalf("%d records to replay; snapshot did not bound the log", len(rec.Records))
	}
	op2, err := operator.New(operator.Config{Topology: topo, MarketOptions: op.MarketOptions()})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverDurable(rec, op2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.HadSnapshot || recovered.NextSlot != 25 {
		t.Fatalf("recovered = %+v, want snapshot-anchored NextSlot 25", recovered)
	}
	if op2.SpotRevenue() != op.SpotRevenue() || op2.Slots() != 25 {
		t.Fatal("snapshot+replay books differ from live run")
	}
}

func TestDurableExtrasRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, op, topo := loopFixture(t)
	log, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverDurable(rec, op, srv); err != nil {
		t.Fatal(err)
	}
	clock, err := NewSlotClock(time.Now().Add(20*time.Millisecond), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	loop := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading:  durableReading,
		RackID:   func(r int) string { return topo.Racks[r].ID },
		Durable: &Durable{
			Log:           log,
			SnapshotEvery: 4,
			ExtraSnapshot: func() ([]byte, error) { return json.Marshal("ledger-state") },
			ExtraSlot:     func(slot int) ([]byte, error) { return json.Marshal(slot * 10) },
		},
	}
	if _, err := loop.RunSlots(0, 10); err != nil {
		t.Fatal(err)
	}
	log.Close()

	_, rec2, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	op2, err := operator.New(operator.Config{Topology: topo, MarketOptions: op.MarketOptions()})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverDurable(rec2, op2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var snapExtra string
	if err := json.Unmarshal(recovered.ExtraSnapshot, &snapExtra); err != nil || snapExtra != "ledger-state" {
		t.Fatalf("snapshot extra = %q (%v)", recovered.ExtraSnapshot, err)
	}
	// Snapshot after slot 7 (8 commits with SnapshotEvery=4 → snapshots at
	// slots 3 and 7); slots 8 and 9 replay with their extras.
	if len(recovered.ExtraSlots) != 2 {
		t.Fatalf("replayed %d slot extras, want 2", len(recovered.ExtraSlots))
	}
	var v int
	if err := json.Unmarshal(recovered.ExtraSlots[1], &v); err != nil || v != 90 {
		t.Fatalf("last slot extra = %s (%v)", recovered.ExtraSlots[1], err)
	}
}

func TestStopChannelEndsAtBoundary(t *testing.T) {
	srv, op, topo := loopFixture(t)
	clock, err := NewSlotClock(time.Now().Add(20*time.Millisecond), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	loop := MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading:  durableReading,
		RackID:   func(r int) string { return topo.Racks[r].ID },
		Stop:     stop,
		OnSlot: func(slot int, _ operator.SlotOutcome, _ int) {
			if slot == 2 {
				close(stop)
			}
		},
	}
	cleared, err := loop.RunSlots(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cleared != 3 {
		t.Fatalf("cleared %d slots, want 3 (stop after slot 2)", cleared)
	}
	if op.Slots() != 3 {
		t.Fatalf("operator ran %d slots after stop", op.Slots())
	}
}
