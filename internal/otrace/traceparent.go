package otrace

import "fmt"

// Traceparent wire form, W3C-trace-context-shaped but sized for SpotDC:
//
//	01-<16 hex trace id>-<16 hex span id>-<2 hex flags>
//
// version "01" is this package's own (W3C "00" carries 128-bit trace
// IDs; ours are 64-bit, see TraceID). Flag bit 0 is the sampled bit.
// The field rides the Fig. 5 messages: downstream on price broadcasts
// (the operator's slot trace, which tenants Adopt) and upstream on bids
// (informational — the tenant's provisional trace).
const (
	traceparentVersion = "01"
	traceparentLen     = 2 + 1 + 16 + 1 + 16 + 1 + 2
	flagSampled        = 0x01
)

// FormatTraceparent renders a span context as the wire field. An invalid
// context renders as "" (the field is omitted).
func FormatTraceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	flags := byte(0)
	if sc.Sampled {
		flags = flagSampled
	}
	b := make([]byte, 0, traceparentLen)
	b = append(b, traceparentVersion...)
	b = append(b, '-')
	b = appendHex16(b, uint64(sc.Trace))
	b = append(b, '-')
	b = appendHex16(b, uint64(sc.Span))
	b = append(b, '-', hexDigits[flags>>4], hexDigits[flags&0xf])
	return string(b)
}

// ParseTraceparent parses the wire field. Unknown versions and malformed
// fields are errors — the caller treats them as "no trace context"
// rather than failing the message.
func ParseTraceparent(s string) (SpanContext, error) {
	if len(s) != traceparentLen {
		return SpanContext{}, fmt.Errorf("otrace: traceparent length %d (want %d)", len(s), traceparentLen)
	}
	if s[0:2] != traceparentVersion {
		return SpanContext{}, fmt.Errorf("otrace: unsupported traceparent version %q", s[0:2])
	}
	if s[2] != '-' || s[19] != '-' || s[36] != '-' {
		return SpanContext{}, fmt.Errorf("otrace: malformed traceparent %q", s)
	}
	trace, err := parseHex(s[3:19])
	if err != nil {
		return SpanContext{}, err
	}
	span, err := parseHex(s[20:36])
	if err != nil {
		return SpanContext{}, err
	}
	flags, err := parseHex(s[37:39])
	if err != nil {
		return SpanContext{}, err
	}
	sc := SpanContext{Trace: TraceID(trace), Span: SpanID(span), Sampled: flags&flagSampled != 0}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("otrace: traceparent %q has a zero trace or span id", s)
	}
	return sc, nil
}

// parseHex decodes a fixed-width lowercase-or-uppercase hex field.
func parseHex(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("otrace: bad hex byte %q in traceparent", c)
		}
		v = v<<4 | d
	}
	return v, nil
}
