package otrace

import (
	"strings"
	"testing"

	"spotdc/internal/metrics"
)

// failWriter fails every write, to drive otrace_export_errors_total.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, &writeErr{}
}

type writeErr struct{}

func (*writeErr) Error() string { return "injected journal failure" }

// TestMetricsExpositionRoundTrip drives every otrace_* family through the
// registry's text exposition: started/sampled on publish, both drop
// reasons, ring occupancy tracking the recorder, and journal write
// failures counting as export errors (spans still reach the ring).
func TestMetricsExpositionRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTracer(Options{
		SampleEvery:     2,
		Seed:            9,
		SlowPercentile:  -1,
		MaxActiveTraces: 1,
		Journal:         failWriter{},
		Metrics:         NewTracerMetrics(reg),
	})

	// Slot 0 samples: root + child publish (2 sampled, 2 export errors).
	r0 := tr.StartRoot("slot", 0)
	tr.StartChild("clear", r0).End()
	r0.End()
	// Slot 1 heads out: root + child drop unsampled.
	r1 := tr.StartRoot("slot", 1)
	tr.StartChild("clear", r1).End()
	r1.End()
	// A deferred trace buffers its finished child; with MaxActiveTraces 1,
	// opening a second trace evicts it and drops the pending span.
	p0 := tr.StartProvisionalRoot("tenant_slot", 1)
	tr.StartChild("submit", p0).End()
	p1 := tr.StartProvisionalRoot("tenant_slot", 3)
	_, _ = p0, p1

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		"otrace_spans_started_total 7",
		"otrace_spans_sampled_total 2",
		`otrace_spans_dropped_total{reason="unsampled"} 2`,
		`otrace_spans_dropped_total{reason="evicted"} 1`,
		"otrace_ring_occupancy 2",
		"otrace_export_errors_total 2",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
	if got := tr.RingOccupancy(); got != 2 {
		t.Errorf("RingOccupancy() = %d, want 2 (exposition gauge must match)", got)
	}
}

// TestTracerMetricsNilSafe pins that a tracer without metrics — and bare
// nil handles — never panic on the span path.
func TestTracerMetricsNilSafe(t *testing.T) {
	var m *TracerMetrics
	m.started()
	m.sampled(3)
	m.droppedN(dropEvicted, 2)
	m.droppedN(dropUnsampled, 0)
	m.exportError()
}
