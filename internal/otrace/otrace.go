// Package otrace is SpotDC's zero-dependency distributed tracing
// subsystem, built in the style of the metrics registry (DESIGN §4i):
// pre-allocated storage, nil-safe handles, and an "off" path that costs
// one branch and zero allocations on the market's hot paths.
//
// A trace covers one market slot end to end: the loop opens a root span
// at the slot boundary, the operator and clearing core attach predict /
// clear / audit children, the WAL commit and broadcast fan-out attach
// theirs, and the tenant client's bid-decision / submit / await-price
// spans parent under the same trace via a traceparent-style wire field
// (see Adopt). Completed spans land in a fixed-capacity ring buffer and,
// optionally, a JSONL span journal keyed by slot so spotdc-audit can
// join spans against slot-journal records.
//
// Sampling is head-based per slot (every Nth root) with forced upgrades
// for the slots an operator actually debugs: degraded, breaker-open,
// emergency, and slowest-percentile slots (ForceSample and the root-end
// latency check). Undecided traces buffer their spans until the decision
// lands, so a forced upgrade loses nothing.
package otrace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceID identifies one slot's trace. 64 bits: the ID space only has to
// be unique within a market run, not globally, and 64-bit IDs keep the
// wire field and the ring compact.
type TraceID uint64

// String renders the ID as fixed-width hex (the journal/export form).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanContext is the propagatable half of a span: enough to parent remote
// work under it and to carry the sampling decision across the wire.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// attrKind discriminates the typed attribute slots.
type attrKind uint8

const (
	attrNone attrKind = iota
	attrStr
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed key/value annotation on a span.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  float64
	i    int64
	b    bool
}

// maxAttrs bounds per-span annotations; a fixed array keeps spans
// copyable into the ring without chasing pointers.
const maxAttrs = 8

// spanData is the value form of a span: what the ring and the pending
// buffers store. It contains no pointers into the tracer so ring entries
// never pin anything.
type spanData struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Slot   int
	// StartMicros is the wall-clock start (unix µs); duration is measured
	// monotonically from start (time.Since) so clock steps never produce
	// negative spans.
	StartMicros int64
	DurMicros   int64
	start       time.Time
	attrs       [maxAttrs]Attr
	nattrs      uint8
	// sampled/noState carry the decision for spans whose trace has no
	// local state (remote parents, e.g. writer-goroutine send spans after
	// the trace aged out): publish iff sampled.
	sampled bool
	noState bool
}

// Span is an in-flight span handle. All methods are nil-receiver safe:
// with tracing off (nil Tracer) every Start* returns nil and the
// instrumentation costs one branch per call site.
type Span struct {
	t *Tracer
	d spanData
}

// Options tunes a Tracer. The zero value samples every slot into a
// 4096-span ring with no journal.
type Options struct {
	// SampleEvery head-samples every Nth slot's trace (slot%N == 0);
	// values ≤ 1 sample every slot. Unsampled slots still trace — their
	// spans buffer until the slot ends — so a forced upgrade (degraded,
	// breaker-open, emergency, slow) publishes the full trace.
	SampleEvery int
	// RingCapacity bounds the in-memory recorder (default 4096 spans);
	// the ring overwrites oldest-first.
	RingCapacity int
	// Journal, if non-nil, receives every published span as one JSON line
	// (ReadSpans parses it back). Write errors are counted on Metrics and
	// never propagate into the market path.
	Journal io.Writer
	// Metrics, if non-nil, counts spans started/sampled/dropped, ring
	// occupancy, and export errors on the shared registry.
	Metrics *TracerMetrics
	// MaxActiveTraces bounds the per-trace pending state (default 64);
	// the oldest trace is evicted FIFO, dropping its unpublished spans.
	MaxActiveTraces int
	// SlowPercentile, in (0,1), force-samples a root span slower than
	// this percentile of the recent root-duration window even when head
	// sampling skipped its slot (default 0.99; negative disables). The
	// upgrade lands at root end, after the broadcast, so it is operator-
	// side only — tenants follow the head decision they saw on the wire.
	SlowPercentile float64
	// Seed fixes the ID generator for reproducible tests (0 seeds from
	// the clock).
	Seed int64
}

// traceState buffers one trace's spans until its sampling decision is
// final, and tracks the decision afterwards for late finishers (e.g.
// per-session send spans ending on writer goroutines).
type traceState struct {
	id      TraceID
	root    SpanID
	slot    int
	decided bool
	sampled bool
	// deferred marks a provisional root (StartProvisionalRoot): the head
	// sampling decision is postponed to Adopt or root end, so every child
	// stays buffered and re-keys cleanly under an adopted remote trace.
	deferred bool
	pending  []spanData
	active   []*Span
}

// Tracer records spans. All methods are safe for concurrent use and safe
// on a nil receiver (the "tracing off" path).
type Tracer struct {
	opts Options

	mu  sync.Mutex
	rng uint64

	ring     []spanData
	ringNext int
	ringLen  int

	free      []*Span
	traces    map[TraceID]*traceState
	order     []TraceID
	stateFree []*traceState

	// buf is the reusable journal encode scratch; encoding into it keeps
	// a journaled publish allocation-free in steady state.
	buf []byte

	// window holds recent root durations (µs) for the slowest-percentile
	// upgrade; sorted is its reusable sort scratch.
	window    []int64
	windowLen int
	windowAt  int
	sorted    []int64
}

// NewTracer builds a tracer with pre-allocated ring and freelists.
func NewTracer(opts Options) *Tracer {
	if opts.RingCapacity <= 0 {
		opts.RingCapacity = 4096
	}
	if opts.MaxActiveTraces <= 0 {
		opts.MaxActiveTraces = 64
	}
	if opts.SlowPercentile == 0 {
		opts.SlowPercentile = 0.99
	}
	seed := uint64(opts.Seed)
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &Tracer{
		opts:   opts,
		rng:    seed,
		ring:   make([]spanData, opts.RingCapacity),
		traces: make(map[TraceID]*traceState, opts.MaxActiveTraces+1),
		order:  make([]TraceID, 0, opts.MaxActiveTraces+1),
		window: make([]int64, 128),
		sorted: make([]int64, 0, 128),
	}
}

// nextID draws a non-zero pseudo-random 64-bit ID (splitmix64).
// Callers hold mu.
func (t *Tracer) nextID() uint64 {
	for {
		t.rng += 0x9e3779b97f4a7c15
		z := t.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// getSpan pops a span from the freelist. Callers hold mu.
func (t *Tracer) getSpan() *Span {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		s.d = spanData{}
		return s
	}
	return &Span{}
}

// putSpan recycles a finished span. Callers hold mu.
func (t *Tracer) putSpan(s *Span) {
	s.t = nil
	t.free = append(t.free, s)
}

// getState pops a trace state from the freelist. Callers hold mu.
func (t *Tracer) getState() *traceState {
	if n := len(t.stateFree); n > 0 {
		st := t.stateFree[n-1]
		t.stateFree = t.stateFree[:n-1]
		st.id, st.root, st.slot = 0, 0, 0
		st.decided, st.sampled, st.deferred = false, false, false
		st.pending = st.pending[:0]
		st.active = st.active[:0]
		return st
	}
	return &traceState{}
}

// evictOldest drops the FIFO-oldest trace state, discarding any
// unpublished spans. Callers hold mu.
func (t *Tracer) evictOldest() {
	if len(t.order) == 0 {
		return
	}
	id := t.order[0]
	copy(t.order, t.order[1:])
	t.order = t.order[:len(t.order)-1]
	st := t.traces[id]
	if st == nil {
		return
	}
	delete(t.traces, id)
	if !st.decided {
		t.opts.Metrics.droppedN(dropEvicted, len(st.pending))
	}
	// Active spans of the evicted trace finish as stateless: they follow
	// the decision as of eviction.
	for _, sp := range st.active {
		sp.d.noState = true
		sp.d.sampled = st.decided && st.sampled
	}
	t.stateFree = append(t.stateFree, st)
}

// StartRoot opens a slot's root span and its trace, applying the head
// sampling decision immediately — the operator form, so the sampled flag
// is already on the wire context when the slot's broadcast goes out.
// Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) StartRoot(name string, slot int) *Span {
	return t.startRoot(name, slot, false)
}

// StartProvisionalRoot opens a root whose head sampling decision is
// deferred until Adopt or root end — the tenant form: children buffer
// instead of publishing, so when the price broadcast delivers the
// operator's traceparent the whole trace re-keys under it (Adopt) with
// nothing already flushed under the provisional ID. A slot that never
// hears a broadcast falls back to the local head decision at root end.
func (t *Tracer) StartProvisionalRoot(name string, slot int) *Span {
	return t.startRoot(name, slot, true)
}

func (t *Tracer) startRoot(name string, slot int, deferred bool) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.opts.Metrics.started()
	s := t.getSpan()
	s.t = t
	s.d.Trace = TraceID(t.nextID())
	s.d.ID = SpanID(t.nextID())
	s.d.Name = name
	s.d.Slot = slot
	now := time.Now()
	s.d.start = now
	s.d.StartMicros = now.UnixMicro()

	st := t.getState()
	st.id = s.d.Trace
	st.root = s.d.ID
	st.slot = slot
	st.deferred = deferred
	if !deferred && t.headSampled(slot) {
		st.decided, st.sampled = true, true
	}
	st.active = append(st.active, s)
	t.traces[st.id] = st
	t.order = append(t.order, st.id)
	if len(t.order) > t.opts.MaxActiveTraces {
		t.evictOldest()
	}
	return s
}

// headSampled is the head sampling rule: every Nth slot. Callers hold mu.
func (t *Tracer) headSampled(slot int) bool {
	return t.opts.SampleEvery <= 1 || (slot >= 0 && slot%t.opts.SampleEvery == 0)
}

// StartChild opens a child span under parent (same trace). A nil tracer
// or nil parent returns nil, so uninstrumented paths stay span-free.
func (t *Tracer) StartChild(name string, parent *Span) *Span {
	if t == nil || parent == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, parent.d.Trace, parent.d.ID, parent.d.Slot,
		parent.d.noState, parent.d.sampled)
}

// StartRemote opens a span under a propagated context — the cross-process
// (and cross-goroutine) form: per-session send spans and any receiver of
// a traceparent field use it. If the context's trace still has local
// state the span joins it; otherwise the context's sampled flag decides.
func (t *Tracer) StartRemote(name string, slot int, ctx SpanContext) *Span {
	if t == nil || !ctx.Valid() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, ctx.Trace, ctx.Span, slot, true, ctx.Sampled)
}

// startLocked builds a non-root span. Callers hold mu.
func (t *Tracer) startLocked(name string, trace TraceID, parent SpanID, slot int, noState, sampled bool) *Span {
	t.opts.Metrics.started()
	s := t.getSpan()
	s.t = t
	s.d.Trace = trace
	s.d.ID = SpanID(t.nextID())
	s.d.Parent = parent
	s.d.Name = name
	s.d.Slot = slot
	now := time.Now()
	s.d.start = now
	s.d.StartMicros = now.UnixMicro()
	if st := t.traces[trace]; st != nil {
		st.active = append(st.active, s)
	} else {
		s.d.noState = noState
		s.d.sampled = sampled
	}
	return s
}

// Context returns the span's propagatable context. The sampled flag is
// the trace's decision so far: undecided traces report false (a later
// slowest-percentile upgrade is operator-side only, by design).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	t := s.t
	if t == nil {
		return SpanContext{Trace: s.d.Trace, Span: s.d.ID, Sampled: s.d.sampled}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sampled := s.d.noState && s.d.sampled
	if st := t.traces[s.d.Trace]; st != nil {
		sampled = st.decided && st.sampled
	}
	return SpanContext{Trace: s.d.Trace, Span: s.d.ID, Sampled: sampled}
}

// SetStr annotates the span with a string attribute (nil-safe).
func (s *Span) SetStr(key, val string) {
	if s == nil || s.d.nattrs >= maxAttrs {
		return
	}
	s.d.attrs[s.d.nattrs] = Attr{Key: key, kind: attrStr, str: val}
	s.d.nattrs++
}

// SetInt annotates the span with an integer attribute (nil-safe).
func (s *Span) SetInt(key string, val int64) {
	if s == nil || s.d.nattrs >= maxAttrs {
		return
	}
	s.d.attrs[s.d.nattrs] = Attr{Key: key, kind: attrInt, i: val}
	s.d.nattrs++
}

// SetFloat annotates the span with a float attribute (nil-safe).
func (s *Span) SetFloat(key string, val float64) {
	if s == nil || s.d.nattrs >= maxAttrs {
		return
	}
	s.d.attrs[s.d.nattrs] = Attr{Key: key, kind: attrFloat, num: val}
	s.d.nattrs++
}

// SetBool annotates the span with a boolean attribute (nil-safe).
func (s *Span) SetBool(key string, val bool) {
	if s == nil || s.d.nattrs >= maxAttrs {
		return
	}
	s.d.attrs[s.d.nattrs] = Attr{Key: key, kind: attrBool, b: val}
	s.d.nattrs++
}

// ForceSample upgrades the span's whole trace to sampled — the degraded /
// breaker-open / emergency path. Buffered spans publish immediately;
// spans still in flight publish when they end. Nil-safe.
func (s *Span) ForceSample() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.traces[s.d.Trace]; st != nil {
		t.decideLocked(st, true)
	} else {
		s.d.noState = true
		s.d.sampled = true
	}
}

// decideLocked finalizes a trace's sampling decision, publishing or
// dropping its buffered spans. Callers hold mu.
func (t *Tracer) decideLocked(st *traceState, sampled bool) {
	if st.decided {
		if sampled && !st.sampled {
			st.sampled = true
			for i := range st.pending {
				t.publishLocked(&st.pending[i])
			}
			st.pending = st.pending[:0]
		}
		return
	}
	st.decided, st.sampled = true, sampled
	if sampled {
		for i := range st.pending {
			t.publishLocked(&st.pending[i])
		}
	} else {
		t.opts.Metrics.droppedN(dropUnsampled, len(st.pending))
	}
	st.pending = st.pending[:0]
}

// End closes the span: its duration is fixed and it publishes, buffers,
// or drops per the trace's sampling decision. Nil-safe; End on an already
// recycled span is undefined (spans are single-End, like timers).
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	dur := time.Since(s.d.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	s.d.DurMicros = dur
	st := t.traces[s.d.Trace]
	if st != nil {
		// Unregister from the active set (swap-delete; the set is tiny).
		for i, sp := range st.active {
			if sp == s {
				st.active[i] = st.active[len(st.active)-1]
				st.active = st.active[:len(st.active)-1]
				break
			}
		}
		if s.d.ID == st.root {
			t.endRootLocked(st, &s.d)
		} else if st.decided {
			if st.sampled {
				t.publishLocked(&s.d)
			} else {
				t.opts.Metrics.droppedN(dropUnsampled, 1)
			}
		} else {
			st.pending = append(st.pending, s.d)
		}
	} else {
		if s.d.noState && s.d.sampled {
			t.publishLocked(&s.d)
		} else {
			t.opts.Metrics.droppedN(dropUnsampled, 1)
		}
	}
	t.putSpan(s)
}

// endRootLocked settles a trace at its root's end: the slow-percentile
// upgrade is evaluated here, then the decision finalizes and the root
// itself publishes or drops. The state stays registered (FIFO-evicted
// later) so late spans — broadcast sends finishing on writer goroutines —
// still follow the decision.
func (t *Tracer) endRootLocked(st *traceState, root *spanData) {
	if !st.decided && st.deferred && t.headSampled(st.slot) {
		// Provisional root that never adopted a remote decision (no
		// broadcast arrived): the local head rule applies now.
		t.decideLocked(st, true)
	}
	if !st.decided && t.opts.SlowPercentile > 0 && t.isSlowLocked(root.DurMicros) {
		t.decideLocked(st, true)
	}
	t.observeRootLocked(root.DurMicros)
	if !st.decided {
		t.decideLocked(st, false)
	}
	if st.sampled {
		t.publishLocked(root)
	} else {
		t.opts.Metrics.droppedN(dropUnsampled, 1)
	}
}

// observeRootLocked feeds the slow-detection window. Callers hold mu.
func (t *Tracer) observeRootLocked(durMicros int64) {
	t.window[t.windowAt] = durMicros
	t.windowAt = (t.windowAt + 1) % len(t.window)
	if t.windowLen < len(t.window) {
		t.windowLen++
	}
}

// isSlowLocked reports whether dur exceeds the SlowPercentile of the
// recent root-duration window (needs ≥16 observations to fire).
func (t *Tracer) isSlowLocked(durMicros int64) bool {
	if t.windowLen < 16 {
		return false
	}
	t.sorted = append(t.sorted[:0], t.window[:t.windowLen]...)
	// Insertion sort: the window is 128 entries and nearly sorted runs
	// are common; this avoids sort.Slice's closure allocation.
	for i := 1; i < len(t.sorted); i++ {
		v := t.sorted[i]
		j := i - 1
		for j >= 0 && t.sorted[j] > v {
			t.sorted[j+1] = t.sorted[j]
			j--
		}
		t.sorted[j+1] = v
	}
	k := int(float64(len(t.sorted)-1) * t.opts.SlowPercentile)
	return durMicros > t.sorted[k]
}

// Adopt re-homes a local trace under a remote parent — the tenant side of
// wire propagation. The local root (and every span of its trace, buffered
// or in flight) moves into remote.Trace, the root parents under
// remote.Span, and the remote sampling decision replaces the local one.
// Call it when the price broadcast delivers the operator's traceparent;
// slots with no broadcast keep their local decision.
func (t *Tracer) Adopt(root *Span, remote SpanContext) {
	if t == nil || root == nil || !remote.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := root.d.Trace
	st := t.traces[old]
	if st == nil || st.root != root.d.ID {
		return
	}
	delete(t.traces, old)
	root.d.Parent = remote.Span
	for i := range st.pending {
		st.pending[i].Trace = remote.Trace
	}
	for _, sp := range st.active {
		sp.d.Trace = remote.Trace
	}
	// Same-process adoption (shared tracer) could collide with the
	// operator's own state for the trace: settle our buffer on the remote
	// decision, hand the in-flight spans a stateless copy of it, and
	// retire the state — the operator's stays authoritative.
	if _, taken := t.traces[remote.Trace]; taken {
		for i := range t.order {
			if t.order[i] == old {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
		st.decided = false
		t.decideLocked(st, remote.Sampled)
		for _, sp := range st.active {
			sp.d.noState = true
			sp.d.sampled = remote.Sampled
		}
		t.stateFree = append(t.stateFree, st)
		return
	}
	st.id = remote.Trace
	for i := range t.order {
		if t.order[i] == old {
			t.order[i] = remote.Trace
			break
		}
	}
	t.traces[remote.Trace] = st
	st.decided = false
	t.decideLocked(st, remote.Sampled)
}

// RingOccupancy returns how many spans the ring currently holds.
func (t *Tracer) RingOccupancy() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ringLen
}
