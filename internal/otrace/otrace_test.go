package otrace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotdc/internal/metrics"
)

// span names used throughout; the market uses the same identifiers.
const (
	rootName  = "slot"
	childName = "clear"
)

func newTestTracer(opts Options) *Tracer {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SlowPercentile == 0 {
		opts.SlowPercentile = -1 // tests opt in explicitly
	}
	return NewTracer(opts)
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.StartRoot(rootName, 7)
		child := tr.StartChild(childName, root)
		child.SetStr("engine", "exact")
		child.SetInt("evaluations", 12)
		child.SetFloat("price", 0.05)
		child.SetBool("degraded", false)
		child.ForceSample()
		child.End()
		_ = root.Context()
		tr.Adopt(root, SpanContext{Trace: 1, Span: 2, Sampled: true})
		root.End()
		_ = tr.RingOccupancy()
		_ = tr.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per run, want 0", allocs)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 4})
	for slot := 0; slot < 8; slot++ {
		root := tr.StartRoot(rootName, slot)
		child := tr.StartChild(childName, root)
		child.End()
		root.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 { // slots 0 and 4, root+child each
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	for _, sp := range spans {
		if sp.Slot != 0 && sp.Slot != 4 {
			t.Errorf("span %s published for unsampled slot %d", sp.Name, sp.Slot)
		}
	}
}

func TestSampleEveryOneSamplesAll(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1})
	for slot := 0; slot < 3; slot++ {
		root := tr.StartRoot(rootName, slot)
		root.End()
	}
	if got := tr.RingOccupancy(); got != 3 {
		t.Fatalf("ring occupancy = %d, want 3", got)
	}
}

func TestForceSampleUpgradePublishesBufferedSpans(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1000})
	root := tr.StartRoot(rootName, 1) // 1 % 1000 != 0: unsampled head
	early := tr.StartChild("bid_drain", root)
	early.End() // buffers: decision pending
	if got := tr.RingOccupancy(); got != 0 {
		t.Fatalf("buffered span published early: ring=%d", got)
	}
	root.ForceSample() // the degraded-slot path
	if got := tr.RingOccupancy(); got != 1 {
		t.Fatalf("buffered span not flushed on upgrade: ring=%d", got)
	}
	late := tr.StartChild("wal_commit", root)
	late.End() // decision already sampled: publishes directly
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var rootRec *SpanRecord
	for i := range spans {
		if spans[i].Root() {
			rootRec = &spans[i]
		}
	}
	if rootRec == nil {
		t.Fatal("no root span published")
	}
	for _, sp := range spans {
		if !sp.Root() && sp.Parent != rootRec.Span {
			t.Errorf("span %s parent %s, want %s", sp.Name, sp.Parent, rootRec.Span)
		}
		if sp.Trace != rootRec.Trace {
			t.Errorf("span %s trace %s, want %s", sp.Name, sp.Trace, rootRec.Trace)
		}
	}
}

func TestUnsampledSlotDropsEverything(t *testing.T) {
	reg := metrics.NewRegistry()
	tm := NewTracerMetrics(reg)
	tr := newTestTracer(Options{SampleEvery: 1000, Metrics: tm})
	root := tr.StartRoot(rootName, 3)
	child := tr.StartChild(childName, root)
	child.End()
	root.End()
	if got := tr.RingOccupancy(); got != 0 {
		t.Fatalf("unsampled slot published %d spans", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	if !strings.Contains(exp, `otrace_spans_dropped_total{reason="unsampled"} 2`) {
		t.Errorf("exposition missing drop count:\n%s", exp)
	}
	if !strings.Contains(exp, "otrace_spans_started_total 2") {
		t.Errorf("exposition missing started count:\n%s", exp)
	}
}

func TestProvisionalRootAdopt(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1})
	root := tr.StartProvisionalRoot("tenant_slot", 5)
	submit := tr.StartChild("submit", root)
	submit.End()
	// Even at SampleEvery 1 the provisional trace defers: nothing may
	// publish under the provisional ID before adoption.
	if got := tr.RingOccupancy(); got != 0 {
		t.Fatalf("provisional trace published %d spans before adoption", got)
	}
	remote := SpanContext{Trace: 0xabcd, Span: 0x1234, Sampled: true}
	tr.Adopt(root, remote)
	await := tr.StartChild("await_price", root)
	await.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantTrace := remote.Trace.String()
	var rootRec SpanRecord
	for _, sp := range spans {
		if sp.Trace != wantTrace {
			t.Errorf("span %s trace %s, want adopted %s", sp.Name, sp.Trace, wantTrace)
		}
		if sp.Name == "tenant_slot" {
			rootRec = sp
		}
	}
	if rootRec.Parent != remote.Span.String() {
		t.Errorf("adopted root parent %s, want remote span %s", rootRec.Parent, remote.Span)
	}
	for _, sp := range spans {
		if sp.Name != "tenant_slot" && sp.Parent != rootRec.Span {
			t.Errorf("child %s parent %s, want root %s", sp.Name, sp.Parent, rootRec.Span)
		}
	}
}

func TestAdoptUnsampledDropsTrace(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1})
	root := tr.StartProvisionalRoot("tenant_slot", 5)
	child := tr.StartChild("submit", root)
	child.End()
	tr.Adopt(root, SpanContext{Trace: 0xabcd, Span: 0x1234, Sampled: false})
	root.End()
	if got := tr.RingOccupancy(); got != 0 {
		t.Fatalf("unsampled adopted trace published %d spans", got)
	}
}

func TestProvisionalRootFallsBackToHeadRule(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 2})
	for slot := 0; slot < 2; slot++ { // slot 0 sampled, slot 1 not
		root := tr.StartProvisionalRoot("tenant_slot", slot)
		child := tr.StartChild("submit", root)
		child.End()
		root.End() // no Adopt: local head rule applies at end
	}
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (slot 0 only)", len(spans))
	}
	for _, sp := range spans {
		if sp.Slot != 0 {
			t.Errorf("span %s published for head-unsampled slot %d", sp.Name, sp.Slot)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1, RingCapacity: 8})
	for slot := 0; slot < 20; slot++ {
		tr.StartRoot(rootName, slot).End()
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d, want 8", len(spans))
	}
	for i, sp := range spans {
		if want := 12 + i; sp.Slot != want { // oldest-first, newest 8 kept
			t.Errorf("spans[%d].Slot = %d, want %d", i, sp.Slot, want)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := newTestTracer(Options{SampleEvery: 1, Journal: &buf})
	root := tr.StartRoot(rootName, 9)
	child := tr.StartChild(childName, root)
	child.SetStr("engine", "exact")
	child.SetStr("error", "quote \"q\" and\nnewline\tand ctrl \x01")
	child.SetInt("evaluations", 42)
	child.SetFloat("price", 0.0625)
	child.SetBool("degraded", true)
	child.End()
	root.End()

	spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(spans))
	}
	rec := spans[0] // child ended (and journaled) first
	if rec.Name != childName || rec.Slot != 9 {
		t.Fatalf("child record = %+v", rec)
	}
	if rec.Attrs["engine"] != "exact" {
		t.Errorf("engine attr = %v", rec.Attrs["engine"])
	}
	if rec.Attrs["error"] != "quote \"q\" and\nnewline\tand ctrl \x01" {
		t.Errorf("escaped string attr = %q", rec.Attrs["error"])
	}
	if rec.Attrs["evaluations"] != float64(42) {
		t.Errorf("evaluations attr = %v", rec.Attrs["evaluations"])
	}
	if rec.Attrs["price"] != 0.0625 {
		t.Errorf("price attr = %v", rec.Attrs["price"])
	}
	if rec.Attrs["degraded"] != true {
		t.Errorf("degraded attr = %v", rec.Attrs["degraded"])
	}
	if spans[1].Span != rec.Parent {
		t.Errorf("parentage broken: root span %s, child parent %s", spans[1].Span, rec.Parent)
	}

	// The journal must match the ring's view of the same spans.
	ring := tr.Snapshot()
	if len(ring) != len(spans) {
		t.Fatalf("ring %d spans, journal %d", len(ring), len(spans))
	}
	for i := range ring {
		if ring[i].Span != spans[i].Span || ring[i].Trace != spans[i].Trace {
			t.Errorf("ring[%d] %+v != journal %+v", i, ring[i], spans[i])
		}
	}
}

func TestReadSpansTornTail(t *testing.T) {
	var buf bytes.Buffer
	tr := newTestTracer(Options{SampleEvery: 1, Journal: &buf})
	tr.StartRoot(rootName, 0).End()
	tr.StartRoot(rootName, 1).End()
	whole := buf.Bytes()
	torn := whole[:len(whole)-10] // crash mid-append
	spans, err := ReadSpans(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(spans) != 1 || spans[0].Slot != 0 {
		t.Fatalf("got %+v, want just slot 0", spans)
	}
	// A malformed line mid-journal is a hard error.
	bad := append([]byte(`{"nope`+"\n"), whole...)
	if _, err := ReadSpans(bytes.NewReader(bad)); err == nil {
		t.Fatal("malformed interior line must fail")
	}
}

func TestSlowPercentileUpgrade(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1 << 30, SlowPercentile: 0.9})
	// Prime the window with fast roots (all head-unsampled). Scheduler
	// jitter can make the odd priming root land past the p90 of an
	// all-microsecond window and publish; that's the feature working, so
	// tolerate a few leaks rather than flake under the race detector.
	for slot := 1; slot <= 20; slot++ {
		tr.StartRoot(rootName, slot).End()
	}
	if got := tr.RingOccupancy(); got > 4 {
		t.Fatalf("%d of 20 fast roots published, want nearly none", got)
	}
	slow := tr.StartRoot(rootName, 21)
	time.Sleep(30 * time.Millisecond) // orders of magnitude over the window
	slow.End()
	found := false
	for _, sp := range tr.Snapshot() {
		if sp.Slot == 21 {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow root not force-sampled: %+v", tr.Snapshot())
	}
}

func TestEvictionDropsPendingAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	tm := NewTracerMetrics(reg)
	tr := newTestTracer(Options{SampleEvery: 1000, MaxActiveTraces: 2, Metrics: tm})
	if sp := tr.StartChild("orphan", nil); sp != nil {
		t.Fatal("StartChild with nil parent must return nil")
	}
	roots := make([]*Span, 3)
	for i := range roots {
		roots[i] = tr.StartRoot(rootName, i*3+1) // all head-unsampled
		c := tr.StartChild(childName, roots[i])
		c.End() // buffers on the trace state
	}
	// Starting the 3rd root evicted the 1st trace with one pending span.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `otrace_spans_dropped_total{reason="evicted"} 1`) {
		t.Errorf("exposition missing eviction drop:\n%s", buf.String())
	}
	// The evicted trace's root still Ends safely (stateless, unsampled).
	roots[0].End()
	if got := tr.RingOccupancy(); got != 0 {
		t.Fatalf("evicted trace published %d spans", got)
	}
}

func TestContextReflectsDecision(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 2})
	sampled := tr.StartRoot(rootName, 0)
	if ctx := sampled.Context(); !ctx.Valid() || !ctx.Sampled {
		t.Errorf("sampled root context = %+v", ctx)
	}
	sampled.End()
	unsampled := tr.StartRoot(rootName, 1)
	if ctx := unsampled.Context(); !ctx.Valid() || ctx.Sampled {
		t.Errorf("unsampled root context = %+v", ctx)
	}
	unsampled.End()
}

func TestStartRemoteFollowsContext(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1})
	// Remote context with no local state: the sampled flag decides.
	sp := tr.StartRemote("send", 4, SpanContext{Trace: 0xbeef, Span: 0xcafe, Sampled: true})
	sp.SetStr("tenant", "Search-1")
	sp.End()
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Trace != TraceID(0xbeef).String() || spans[0].Parent != SpanID(0xcafe).String() {
		t.Fatalf("remote span joined wrong trace: %+v", spans[0])
	}
	drop := tr.StartRemote("send", 4, SpanContext{Trace: 0xbeef, Span: 0xcafe, Sampled: false})
	drop.End()
	if got := tr.RingOccupancy(); got != 1 {
		t.Fatalf("unsampled remote span published: ring=%d", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := newTestTracer(Options{SampleEvery: 1})
	root := tr.StartRoot(rootName, 2)
	child := tr.StartChild(childName, root)
	child.SetStr("engine", "scan")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("produced trace fails own validation: %v", err)
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":0,"pid":1,"tid":1,"cat":"x"}],"displayTimeUnit":"ms"}`)); err == nil {
		t.Fatal("empty-name event must fail validation")
	}
	if err := ValidateChromeTrace([]byte(`{"displayTimeUnit":"ms"}`)); err == nil {
		t.Fatal("missing traceEvents must fail validation")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sc := range []SpanContext{
		{Trace: 1, Span: 2, Sampled: false},
		{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef, Sampled: true},
	} {
		s := FormatTraceparent(sc)
		if len(s) != traceparentLen {
			t.Fatalf("len(%q) = %d", s, len(s))
		}
		got, err := ParseTraceparent(s)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", s, err)
		}
		if got != sc {
			t.Fatalf("round trip %+v != %+v", got, sc)
		}
	}
	if got := FormatTraceparent(SpanContext{}); got != "" {
		t.Errorf("invalid context formats as %q, want empty", got)
	}
	for _, bad := range []string{
		"", "01-x", strings.Repeat("0", traceparentLen),
		"00-0000000000000001-0000000000000002-01", // W3C version: 128-bit IDs, not ours
		"01-0000000000000000-0000000000000002-01", // zero trace id
		"01-0000000000000001-0000000000000002+01", // bad separator
		"01-000000000000000g-0000000000000002-01", // bad hex
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) succeeded", bad)
		}
	}
}

func TestTracerOffHotPathAllocs(t *testing.T) {
	var tr *Tracer // tracing off
	var parent *Span
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartChild(childName, parent)
		sp.SetStr("engine", "exact")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("tracing-off span site allocated %.1f per run, want 0", allocs)
	}
}

func TestTracerOnSteadyStateAllocs(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	tr := newTestTracer(Options{SampleEvery: 1, Journal: &buf})
	slot := 0
	// Warm the freelists and the encode buffer.
	for i := 0; i < 8; i++ {
		root := tr.StartRoot(rootName, slot)
		tr.StartChild(childName, root).End()
		root.End()
		slot++
	}
	allocs := testing.AllocsPerRun(50, func() {
		root := tr.StartRoot(rootName, slot)
		child := tr.StartChild(childName, root)
		child.SetStr("engine", "exact")
		child.SetInt("evaluations", 10)
		child.End()
		root.End()
		slot++
	})
	// Budget: the time.Now calls and map operations may allocate on some
	// runtimes; hold the whole sampled root+child cycle to ≤ 4.
	if allocs > 4 {
		t.Fatalf("steady-state traced slot allocated %.1f per run, budget 4", allocs)
	}
}

func FuzzTraceparentRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), true)
	f.Add(uint64(0xdeadbeef), uint64(0xcafef00d), false)
	f.Fuzz(func(t *testing.T, trace, span uint64, sampled bool) {
		sc := SpanContext{Trace: TraceID(trace), Span: SpanID(span), Sampled: sampled}
		s := FormatTraceparent(sc)
		if !sc.Valid() {
			if s != "" {
				t.Fatalf("invalid context formatted as %q", s)
			}
			return
		}
		got, err := ParseTraceparent(s)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", s, err)
		}
		if got != sc {
			t.Fatalf("round trip %+v != %+v", got, sc)
		}
	})
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("01-0000000000000001-0000000000000002-01")
	f.Add("00-00000000000000000000000000000001-0000000000000002-01")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err == nil && !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) returned invalid context without error", s)
		}
	})
}
