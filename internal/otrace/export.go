package otrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// SpanRecord is the exported (journal / HTTP / converter) form of a
// published span. Attrs values are string, int64→float64, float64, or
// bool exactly as annotated.
type SpanRecord struct {
	Trace       string                 `json:"trace"`
	Span        string                 `json:"span"`
	Parent      string                 `json:"parent,omitempty"`
	Name        string                 `json:"name"`
	Slot        int                    `json:"slot"`
	StartMicros int64                  `json:"start_us"`
	DurMicros   int64                  `json:"dur_us"`
	Attrs       map[string]interface{} `json:"attrs,omitempty"`
}

// Root reports whether the record is a trace root (no parent).
func (r SpanRecord) Root() bool { return r.Parent == "" }

// publishLocked commits one finished span: into the ring (overwriting
// oldest) and, when a journal is attached, as one JSON line. Callers
// hold mu.
func (t *Tracer) publishLocked(d *spanData) {
	t.ring[t.ringNext] = *d
	t.ringNext = (t.ringNext + 1) % len(t.ring)
	if t.ringLen < len(t.ring) {
		t.ringLen++
	}
	t.opts.Metrics.sampled(t.ringLen)
	if t.opts.Journal == nil {
		return
	}
	t.buf = appendSpanJSON(t.buf[:0], d)
	if _, err := t.opts.Journal.Write(t.buf); err != nil {
		t.opts.Metrics.exportError()
	}
}

// appendSpanJSON encodes one span as a JSON line into dst. Manual
// encoding (no reflection, no intermediate map) keeps a journaled
// publish allocation-free once dst has grown.
func appendSpanJSON(dst []byte, d *spanData) []byte {
	dst = append(dst, `{"trace":"`...)
	dst = appendHex16(dst, uint64(d.Trace))
	dst = append(dst, `","span":"`...)
	dst = appendHex16(dst, uint64(d.ID))
	if d.Parent != 0 {
		dst = append(dst, `","parent":"`...)
		dst = appendHex16(dst, uint64(d.Parent))
	}
	dst = append(dst, `","name":`...)
	dst = appendJSONString(dst, d.Name)
	dst = append(dst, `,"slot":`...)
	dst = strconv.AppendInt(dst, int64(d.Slot), 10)
	dst = append(dst, `,"start_us":`...)
	dst = strconv.AppendInt(dst, d.StartMicros, 10)
	dst = append(dst, `,"dur_us":`...)
	dst = strconv.AppendInt(dst, d.DurMicros, 10)
	if d.nattrs > 0 {
		dst = append(dst, `,"attrs":{`...)
		for i := 0; i < int(d.nattrs); i++ {
			if i > 0 {
				dst = append(dst, ',')
			}
			a := &d.attrs[i]
			dst = appendJSONString(dst, a.Key)
			dst = append(dst, ':')
			switch a.kind {
			case attrStr:
				dst = appendJSONString(dst, a.str)
			case attrInt:
				dst = strconv.AppendInt(dst, a.i, 10)
			case attrFloat:
				dst = strconv.AppendFloat(dst, a.num, 'g', -1, 64)
			case attrBool:
				dst = strconv.AppendBool(dst, a.b)
			default:
				dst = append(dst, "null"...)
			}
		}
		dst = append(dst, '}')
	}
	return append(dst, '}', '\n')
}

const hexDigits = "0123456789abcdef"

// appendHex16 appends v as 16 lowercase hex digits.
func appendHex16(dst []byte, v uint64) []byte {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(dst, b[:]...)
}

// appendJSONString appends s as a JSON string, escaping the characters
// JSON requires (quotes, backslash, control bytes). Span names are fixed
// identifiers, but attribute values can carry error text.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// record converts one ring/pending entry to its exported form.
func (d *spanData) record() SpanRecord {
	r := SpanRecord{
		Trace:       d.Trace.String(),
		Span:        d.ID.String(),
		Name:        d.Name,
		Slot:        d.Slot,
		StartMicros: d.StartMicros,
		DurMicros:   d.DurMicros,
	}
	if d.Parent != 0 {
		r.Parent = d.Parent.String()
	}
	if d.nattrs > 0 {
		r.Attrs = make(map[string]interface{}, d.nattrs)
		for i := 0; i < int(d.nattrs); i++ {
			a := &d.attrs[i]
			switch a.kind {
			case attrStr:
				r.Attrs[a.Key] = a.str
			case attrInt:
				r.Attrs[a.Key] = float64(a.i)
			case attrFloat:
				r.Attrs[a.Key] = a.num
			case attrBool:
				r.Attrs[a.Key] = a.b
			}
		}
	}
	return r
}

// Snapshot copies the ring's published spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.ringLen)
	start := t.ringNext - t.ringLen
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.ringLen; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)].record())
	}
	return out
}

// maxSpanLine bounds one span-journal line; spans are small, so anything
// larger is corruption.
const maxSpanLine = 1 << 20

// ReadSpans parses a JSONL span journal. Like the slot journal's reader
// it tolerates a torn tail: an unparsable final line (the process died
// mid-append) is dropped, while a malformed line followed by further
// lines is a hard error.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSpanLine)
	var out []SpanRecord
	var pending error
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if pending != nil {
			return nil, pending
		}
		var rec SpanRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pending = fmt.Errorf("otrace: span journal line %d: %w", len(out)+1, err)
			continue
		}
		if rec.Trace == "" || rec.Span == "" || rec.Name == "" {
			pending = fmt.Errorf("otrace: span journal line %d: missing trace/span/name", len(out)+1)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one Chrome trace-event ("X" complete events), the JSON
// Perfetto's legacy importer loads.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   int64                  `json:"ts"`
	Dur  int64                  `json:"dur"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace converts spans to Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each trace (= slot)
// gets its own tid so concurrent slots render as separate tracks; spans
// become "X" complete events with their attributes in args.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	tids := make(map[string]int)
	for _, sp := range spans {
		if _, ok := tids[sp.Trace]; !ok {
			tids[sp.Trace] = len(tids) + 1
		}
	}
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		args := make(map[string]interface{}, len(sp.Attrs)+3)
		for k, v := range sp.Attrs {
			args[k] = v
		}
		args["trace"] = sp.Trace
		args["span"] = sp.Span
		args["slot"] = sp.Slot
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "spotdc",
			Ph:   "X",
			Ts:   sp.StartMicros,
			Dur:  sp.DurMicros,
			Pid:  1,
			Tid:  tids[sp.Trace],
			Args: args,
		})
	}
	// Perfetto sorts internally, but emitting in ts order keeps the file
	// diffable for golden tests.
	sort.SliceStable(ct.TraceEvents, func(i, j int) bool { return ct.TraceEvents[i].Ts < ct.TraceEvents[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ValidateChromeTrace checks data against the trace-event schema subset
// Perfetto's importer requires: a traceEvents array of "X" events, each
// with a name, non-negative ts/dur, and positive pid/tid. It is the
// embedded schema check behind `spotdc-spans -check` and the smoke test.
func ValidateChromeTrace(data []byte) error {
	var ct chromeTrace
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ct); err != nil {
		return fmt.Errorf("otrace: chrome trace: %w", err)
	}
	if ct.TraceEvents == nil {
		return fmt.Errorf("otrace: chrome trace: missing traceEvents array")
	}
	for i, ev := range ct.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("otrace: chrome trace event %d: empty name", i)
		case ev.Ph != "X":
			return fmt.Errorf("otrace: chrome trace event %d: phase %q (want complete event \"X\")", i, ev.Ph)
		case ev.Ts < 0 || ev.Dur < 0:
			return fmt.Errorf("otrace: chrome trace event %d: negative ts/dur", i)
		case ev.Pid <= 0 || ev.Tid <= 0:
			return fmt.Errorf("otrace: chrome trace event %d: non-positive pid/tid", i)
		}
	}
	return nil
}

// TraceHandler serves the tracer's recent spans as JSON — the
// /debug/traces endpoint. ?slot=N filters to one slot's spans.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Snapshot()
		if q := req.URL.Query().Get("slot"); q != "" {
			slot, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad slot", http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Slot == slot {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		_ = enc.Encode(spans)
	})
}
