package otrace

import "spotdc/internal/metrics"

// Drop reasons for otrace_spans_dropped_total.
const (
	dropUnsampled = "unsampled"
	dropEvicted   = "evicted"
)

// TracerMetrics counts the tracer's own behavior on the shared registry:
// spans started/sampled/dropped, ring occupancy, export errors. Like the
// protocol metrics, every child is resolved at construction so the span
// path costs only atomic updates. All methods are nil-safe.
type TracerMetrics struct {
	started_      *metrics.Counter
	sampled_      *metrics.Counter
	dropUnsampled *metrics.Counter
	dropEvicted   *metrics.Counter
	ringOccupancy *metrics.Gauge
	exportErrors  *metrics.Counter
}

// NewTracerMetrics registers the otrace_* families on the registry.
// Registration is idempotent (registry semantics), so tracers sharing a
// registry share counters.
func NewTracerMetrics(r *metrics.Registry) *TracerMetrics {
	dropped := r.CounterVec("otrace_spans_dropped_total",
		"Spans discarded without publishing, by reason (unsampled head decision, or pending-state eviction).",
		"reason")
	return &TracerMetrics{
		started_: r.Counter("otrace_spans_started_total",
			"Spans opened by any Start call, sampled or not."),
		sampled_: r.Counter("otrace_spans_sampled_total",
			"Spans published into the ring (and journal when attached)."),
		dropUnsampled: dropped.With(dropUnsampled),
		dropEvicted:   dropped.With(dropEvicted),
		ringOccupancy: r.Gauge("otrace_ring_occupancy",
			"Published spans currently held by the in-memory ring recorder."),
		exportErrors: r.Counter("otrace_export_errors_total",
			"Span-journal write failures (spans still reach the ring)."),
	}
}

func (m *TracerMetrics) started() {
	if m != nil {
		m.started_.Inc()
	}
}

func (m *TracerMetrics) sampled(ringLen int) {
	if m != nil {
		m.sampled_.Inc()
		m.ringOccupancy.Set(float64(ringLen))
	}
}

func (m *TracerMetrics) droppedN(reason string, n int) {
	if m == nil || n <= 0 {
		return
	}
	switch reason {
	case dropEvicted:
		m.dropEvicted.Add(uint64(n))
	default:
		m.dropUnsampled.Add(uint64(n))
	}
}

func (m *TracerMetrics) exportError() {
	if m != nil {
		m.exportErrors.Inc()
	}
}
