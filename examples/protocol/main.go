// Protocol demonstrates the networked SpotDC deployment of Fig. 5: the
// operator's market server and two remote tenants exchange HeartBeat, Bid
// and Price messages as newline-delimited JSON over localhost TCP, and
// three market slots clear end to end. A fourth slot shows the Section
// III-C exception path: the operator's power telemetry is corrupt, so the
// slot degrades to an explicit zero-price broadcast and every tenant falls
// back to the no-spot default — the market never stops.
//
//	go run ./examples/protocol
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"spotdc"
)

func main() {
	topo, err := spotdc.NewTopology(1370,
		[]spotdc.PDU{{ID: "PDU#1", Capacity: 715}},
		[]spotdc.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
		})
	if err != nil {
		log.Fatal(err)
	}
	op, err := spotdc.NewOperator(spotdc.OperatorConfig{
		Topology:      topo,
		MarketOptions: spotdc.MarketOptions{PriceStep: 0.001},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := spotdc.NewMarketServer("127.0.0.1:0", func(id string) (int, bool) {
		return topo.RackByID(id)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("operator listening on %s\n\n", srv.Addr())

	search, err := spotdc.DialMarket(srv.Addr(), "Search-1", []string{"S-1"})
	if err != nil {
		log.Fatal(err)
	}
	defer search.Close()
	count, err := spotdc.DialMarket(srv.Addr(), "Count-1", []string{"O-1"})
	if err != nil {
		log.Fatal(err)
	}
	defer count.Close()

	reading := spotdc.Reading{
		RackWatts:     []float64{120, 100},
		OtherPDUWatts: []float64{190},
	}
	for slot := 0; slot < 3; slot++ {
		// Tenants submit their four-parameter bids during the previous slot.
		if err := search.SubmitBids(slot, []spotdc.RackBid{
			{Rack: "S-1", DMax: 40, QMin: 0.18, DMin: 15, QMax: 0.45},
		}); err != nil {
			log.Fatal(err)
		}
		if slot%2 == 0 { // the batch tenant only has backlog on even slots
			if err := count.SubmitBids(slot, []spotdc.RackBid{
				{Rack: "O-1", DMax: 60, QMin: 0.02, DMin: 6, QMax: 0.16},
			}); err != nil {
				log.Fatal(err)
			}
		}
		awaitBids(srv, slot)

		// The operator collects the slot's bids, clears, and broadcasts.
		bids := srv.TakeBids(slot)
		out, err := op.RunSlot(bids, reading, 2.0/60)
		if err != nil {
			log.Fatal(err)
		}
		srv.Broadcast(slot, out.Result.Price, out.Result.Allocations,
			func(i int) string { return topo.Racks[i].ID })

		fmt.Printf("slot %d: %d bids, price $%.3f/kWh, sold %.1f W\n",
			slot, len(bids), out.Result.Price, out.Result.TotalWatts)
		for _, c := range []*spotdc.MarketClient{search, count} {
			price, grants, err := c.AwaitPrice(slot, 2*time.Second)
			if err == spotdc.ErrNoPrice {
				fmt.Printf("  %-9s missed the broadcast: defaults to no spot capacity\n", c.Tenant())
				continue
			} else if err != nil {
				log.Fatal(err)
			}
			total := 0.0
			for _, g := range grants {
				total += g.Watts
			}
			fmt.Printf("  %-9s sees price $%.3f and %.1f W of spot capacity\n",
				c.Tenant(), price, total)
		}
	}

	// Slot 3: the telemetry feed glitches (NaN watts). RunSlot refuses to
	// clear on a corrupt reading; the operator broadcasts an explicit
	// zero-price, no-grant message so tenants apply the no-spot default
	// instead of waiting on a silent market (Section III-C).
	slot := 3
	if err := search.SubmitBids(slot, []spotdc.RackBid{
		{Rack: "S-1", DMax: 40, QMin: 0.18, DMin: 15, QMax: 0.45},
	}); err != nil {
		log.Fatal(err)
	}
	awaitBids(srv, slot)
	bids := srv.TakeBids(slot)
	poisoned := spotdc.Reading{RackWatts: []float64{math.NaN(), 100}, OtherPDUWatts: []float64{190}}
	if _, err := op.RunSlot(bids, poisoned, 2.0/60); err != nil {
		fmt.Printf("slot %d: telemetry corrupt (%v) — degrading to no-spot default\n", slot, err)
		srv.Broadcast(slot, 0, nil, func(i int) string { return topo.Racks[i].ID })
	}
	for _, c := range []*spotdc.MarketClient{search, count} {
		price, grants, err := c.AwaitPrice(slot, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s sees price $%.3f and %d grants: no spot capacity this slot\n",
			c.Tenant(), price, len(grants))
	}

	fmt.Printf("\ncumulative operator revenue: $%.6f\n", op.SpotRevenue())
}

// awaitBids gives the asynchronous submissions a moment to land; in a real
// deployment the operator clears at the slot boundary (Fig. 6), which is
// minutes after tenants bid.
func awaitBids(srv *spotdc.MarketServer, slot int) {
	time.Sleep(150 * time.Millisecond)
	_ = slot
}
