// Testbed replays the paper's 20-minute testbed experiment (Section V-A,
// Figs. 10 and 11): the Table I data center runs ten 2-minute slots with a
// deliberately volatile background-power trace; sprinting tenants bid when
// bursts threaten their 100 ms SLO and opportunistic tenants bid while
// they have backlog.
//
//	go run ./examples/testbed [-seed N] [-slots N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"spotdc"
)

func main() {
	seed := flag.Int64("seed", 42, "trace seed")
	slots := flag.Int("slots", 10, "number of 2-minute slots")
	flag.Parse()

	sc, err := spotdc.Testbed(spotdc.TestbedOptions{
		Seed:                *seed,
		Slots:               *slots,
		OtherVolatility:     0.08,    // the paper's synthetic high-volatility trace
		SprintBurstFraction: 0.5,     // a high-traffic period, as in the paper's demo
		SprintPhase:         math.Pi, // start at the daily traffic peak
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModeSpotDC, Record: true})
	if err != nil {
		log.Fatal(err)
	}
	capped, err := rerunCapped(*seed, *slots)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slot  time   spot-avail  spot-sold   price      Search-1 p99ish  Count-1 MB/s")
	for s := 0; s < res.Slots; s++ {
		search := res.TenantTraces["Search-1"][s]
		lat := "-"
		if search > 0 {
			lat = fmt.Sprintf("%.0f ms", 1000/search)
		}
		fmt.Printf("%3d  %4ds   %7.1f W  %7.1f W  $%.3f/kWh   %-10s      %6.1f\n",
			s, s*res.SlotSeconds, res.SpotAvailable[s], res.SpotSold[s],
			res.PriceSeries[s], lat, res.TenantTraces["Count-1"][s])
	}

	fmt.Println("\ntenant summary (vs PowerCapped):")
	for _, name := range []string{"Search-1", "Web", "Search-2", "Count-1", "Graph-1", "Count-2", "Sort", "Graph-2"} {
		ts := res.Tenants[name]
		base := capped.Tenants[name]
		perf := "-"
		if ts.NeedSlots > 0 && base.PerfNeed.Mean() > 0 {
			perf = fmt.Sprintf("%.2fx", ts.PerfNeed.Mean()/base.PerfNeed.Mean())
		}
		fmt.Printf("  %-9s class=%-13s need-slots=%2d  SLO-violations=%d (capped: %d)  perf=%s  paid=$%.5f\n",
			name, ts.Class, ts.NeedSlots, ts.SLOViolations, base.SLOViolations, perf, ts.Payment)
	}
	fmt.Printf("\noperator spot revenue: $%.5f over %.1f minutes; emergencies: %d\n",
		res.SpotRevenue, res.Hours()*60, res.EmergencySlots)
}

func rerunCapped(seed int64, slots int) (*spotdc.SimResult, error) {
	sc, err := spotdc.Testbed(spotdc.TestbedOptions{
		Seed: seed, Slots: slots, OtherVolatility: 0.08,
		SprintBurstFraction: 0.5, SprintPhase: math.Pi,
	})
	if err != nil {
		return nil, err
	}
	return spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModePowerCapped, Record: true})
}
