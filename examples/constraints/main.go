// Constraints demonstrates the Section III-A practical constraints beyond
// the rack/PDU/UPS hierarchy: heat density (a hot aisle whose racks must
// not jointly exceed a cooling limit) and three-phase balance. Both can
// reshape who gets spot capacity even when raw PDU headroom is plentiful.
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"

	"spotdc"
)

func main() {
	cons := spotdc.Constraints{
		RackHeadroom: []float64{60, 60, 60, 60, 60, 60},
		RackPDU:      []int{0, 0, 0, 1, 1, 1},
		PDUSpot:      []float64{200, 200},
		UPSSpot:      400,
	}
	bids := []spotdc.Bid{
		{Rack: 0, Tenant: "a", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
		{Rack: 1, Tenant: "b", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
		{Rack: 2, Tenant: "c", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
		{Rack: 3, Tenant: "d", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
		{Rack: 4, Tenant: "e", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
		{Rack: 5, Tenant: "f", Fn: spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.4}},
	}

	run := func(label string, extras *spotdc.Extras) {
		mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.001})
		if err != nil {
			log.Fatal(err)
		}
		if extras != nil {
			if err := mkt.SetExtras(extras); err != nil {
				log.Fatal(err)
			}
		}
		res, err := mkt.ClearWithExtras(bids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s price $%.3f/kWh, sold %5.1f W, grants:", label, res.Price, res.TotalWatts)
		for _, a := range res.Allocations {
			fmt.Printf(" %s=%.0fW", a.Tenant, a.Watts)
		}
		fmt.Println()
	}

	run("unconstrained", nil)

	// Racks 0-2 share a hot aisle with only 80 W of cooling headroom: the
	// market must price their joint demand down to the cooling limit.
	run("hot aisle (80 W over a,b,c)", &spotdc.Extras{
		Zones: []spotdc.Zone{{Name: "aisle-1", Racks: []int{0, 1, 2}, MaxWatts: 80}},
	})

	// Every bidding rack on PDU#2 hangs off phase 0: the balance constraint
	// refuses allocations that would skew the three-phase feed.
	run("phases skewed on PDU#2", &spotdc.Extras{
		RackPhase: spotdc.PhaseOf{0, 1, 2, 0, 0, 0},
	})

	// Same racks re-cabled across phases: full allocation returns.
	run("phases balanced", &spotdc.Extras{
		RackPhase: spotdc.PhaseOf{0, 1, 2, 0, 1, 2},
	})
}
