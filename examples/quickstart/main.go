// Quickstart: one SpotDC market round through the public API.
//
// It builds the paper's scaled-down power hierarchy, has a sprinting and
// an opportunistic tenant submit piece-wise linear demand-function bids,
// clears the market at the revenue-maximizing uniform price, and prints
// the resulting allocations and bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spotdc"
)

func main() {
	// Two cluster PDUs under one UPS, all 5% oversubscribed (Table I).
	topo, err := spotdc.NewTopology(1370,
		[]spotdc.PDU{
			{ID: "PDU#1", Capacity: 715},
			{ID: "PDU#2", Capacity: 724},
		},
		[]spotdc.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
		})
	if err != nil {
		log.Fatal(err)
	}
	op, err := spotdc.NewOperator(spotdc.OperatorConfig{
		Topology:      topo,
		MarketOptions: spotdc.MarketOptions{PriceStep: 0.001},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The operator's routine rack-level monitoring: every rack below its
	// reservation, plus non-participating load directly at each PDU.
	reading := spotdc.Reading{
		RackWatts:     []float64{120, 100, 125},
		OtherPDUWatts: []float64{190, 200},
	}

	// Tenants bid the four solicited parameters per rack (Eqn. 5):
	// (Dmax, qmin), (Dmin, qmax). The search tenant is under SLO pressure
	// and bids high; the batch tenant never bids above the amortized
	// guaranteed rate (~$0.16/kW·h).
	bids := []spotdc.Bid{
		{Rack: 0, Tenant: "Search-1", Fn: spotdc.LinearBid{DMax: 40, DMin: 15, QMin: 0.18, QMax: 0.45}},
		{Rack: 1, Tenant: "Count-1", Fn: spotdc.LinearBid{DMax: 60, DMin: 6, QMin: 0.02, QMax: 0.16}},
	}

	out, err := op.RunSlot(bids, reading, 2.0/60) // one 2-minute slot
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted spot capacity:")
	for m, w := range out.Spot.PDUWatts {
		fmt.Printf("  %-6s %7.1f W\n", topo.PDUs[m].ID, w)
	}
	fmt.Printf("  UPS    %7.1f W\n\n", out.Spot.UPSWatts)

	fmt.Printf("clearing price: $%.3f/kW·h\n", out.Result.Price)
	fmt.Printf("spot capacity sold: %.1f W\n\n", out.Result.TotalWatts)
	for _, a := range out.Result.Allocations {
		fmt.Printf("  %-10s rack %-4s granted %5.1f W\n",
			a.Tenant, topo.Racks[a.Rack].ID, a.Watts)
	}
	fmt.Printf("\noperator revenue this slot: $%.6f\n", out.RevenueThisSlot)
	for _, tenantName := range []string{"Search-1", "Count-1"} {
		fmt.Printf("  %-10s pays $%.6f\n", tenantName, op.PaymentOf(tenantName))
	}
}
