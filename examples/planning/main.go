// Planning sweeps spot-capacity availability the way the paper's
// sensitivity study does (Fig. 15): holding the tenants fixed, it varies
// the operator's PDU/UPS oversubscription and reports how the extra
// profit, the tenants' performance improvement, and the market price
// respond. This is the analysis a colocation operator would run before
// deciding how much spot capacity to offer.
//
//	go run ./examples/planning [-slots N]
package main

import (
	"flag"
	"fmt"
	"log"

	"spotdc"
)

func main() {
	slots := flag.Int("slots", 3000, "2-minute slots per design point")
	flag.Parse()

	fmt.Println("capacity  avg spot    extra     tenant perf   median")
	fmt.Println("scale     (pct subs)  profit    (vs capped)   price $/kWh")
	for _, scale := range []float64{0.97, 1.0, 1.03, 1.06, 1.1} {
		spot, capped, err := runPair(scale, *slots)
		if err != nil {
			log.Fatal(err)
		}
		subs := spot.Operator.Topology().TotalGuaranteed() + 500
		availSum, n := 0.0, 0
		for _, a := range spot.SpotAvailable {
			availSum += a
			n++
		}
		avgAvail := availSum / float64(n) / subs

		// Mean performance ratio across tenants that needed spot capacity.
		ratioSum, ratioN := 0.0, 0
		for name, ts := range spot.Tenants {
			base := capped.Tenants[name]
			if ts.NeedSlots == 0 || base.PerfNeed.Mean() <= 0 {
				continue
			}
			ratioSum += ts.PerfNeed.Mean() / base.PerfNeed.Mean()
			ratioN++
		}
		perf := ratioSum / float64(ratioN)

		med := medianOf(spot.Prices)
		fmt.Printf("%-8.2f  %6.1f%%    %5.1f%%    %.2fx         %.3f\n",
			scale, 100*avgAvail, 100*spot.Profit(500).ExtraProfitFraction, perf, med)
	}
}

func runPair(scale float64, slots int) (spot, capped *spotdc.SimResult, err error) {
	mk := func() (spotdc.Scenario, error) {
		return spotdc.Testbed(spotdc.TestbedOptions{
			Seed: 42, Slots: slots, CapacityScale: scale,
		})
	}
	sc, err := mk()
	if err != nil {
		return nil, nil, err
	}
	if spot, err = spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModeSpotDC}); err != nil {
		return nil, nil, err
	}
	if sc, err = mk(); err != nil {
		return nil, nil, err
	}
	capped, err = spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModePowerCapped})
	return spot, capped, err
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort; the slice is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
