package spotdc_test

import (
	"fmt"

	"spotdc"
)

// The four-parameter piece-wise linear demand function of Fig. 3(a):
// flat at DMax up to QMin, linear down to DMin at QMax, zero above.
func ExampleLinearBid() {
	bid := spotdc.LinearBid{DMax: 40, DMin: 10, QMin: 0.1, QMax: 0.4}
	for _, price := range []float64{0.05, 0.25, 0.4, 0.5} {
		fmt.Printf("demand at $%.2f/kWh: %.0f W\n", price, bid.Demand(price))
	}
	// Output:
	// demand at $0.05/kWh: 40 W
	// demand at $0.25/kWh: 25 W
	// demand at $0.40/kWh: 10 W
	// demand at $0.50/kWh: 0 W
}

// Clearing a two-rack market: the operator scans feasible prices and picks
// the revenue maximum subject to rack, PDU and UPS limits.
func ExampleMarket_Clear() {
	cons := spotdc.Constraints{
		RackHeadroom: []float64{60, 60},
		RackPDU:      []int{0, 0},
		PDUSpot:      []float64{80},
		UPSSpot:      80,
	}
	market, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.01})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := market.Clear([]spotdc.Bid{
		{Rack: 0, Tenant: "sprint", Fn: spotdc.LinearBid{DMax: 40, DMin: 20, QMin: 0.2, QMax: 0.4}},
		{Rack: 1, Tenant: "batch", Fn: spotdc.LinearBid{DMax: 60, DMin: 6, QMin: 0.02, QMax: 0.16}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("price $%.2f/kWh\n", res.Price)
	for _, a := range res.Allocations {
		fmt.Printf("%s: %.0f W\n", a.Tenant, a.Watts)
	}
	// The revenue-maximizing price sits inside the sprinter's elastic range
	// and prices the low-bidding batch tenant out — the Fig. 10 dynamic.
	// Output:
	// price $0.30/kWh
	// sprint: 30 W
	// batch: 0 W
}

// A multi-rack tenant bids a bundled demand vector: one LinearBid per rack
// sharing the same price pair (Section III-B3).
func ExampleBundleBids() {
	bids, err := spotdc.BundleBids("web", []int{2, 5},
		[]float64{50, 30}, // DMax per rack
		[]float64{20, 10}, // DMin per rack
		0.1, 0.4)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, b := range bids {
		fmt.Printf("rack %d: %.0f W at the midpoint price\n", b.Rack, b.Fn.Demand(0.25))
	}
	// Output:
	// rack 2: 35 W at the midpoint price
	// rack 5: 20 W at the midpoint price
}

// The owner-operated MaxPerf baseline allocates to the steepest gain
// curves, no payments.
func ExampleMaxPerf() {
	cons := spotdc.Constraints{
		RackHeadroom: []float64{50, 50},
		RackPDU:      []int{0, 0},
		PDUSpot:      []float64{60},
		UPSSpot:      60,
	}
	allocs, err := spotdc.MaxPerf(cons, []spotdc.MaxPerfRequest{
		{Rack: 0, MaxWatts: 50, Gain: func(w float64) float64 { return 0.004 * w }},
		{Rack: 1, MaxWatts: 50, Gain: func(w float64) float64 { return 0.001 * w }},
	}, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, a := range allocs {
		fmt.Printf("rack %d: %.0f W\n", a.Rack, a.Watts)
	}
	// Output:
	// rack 0: 50 W
	// rack 1: 10 W
}
