// Smoke test for the observability surface (make smoke-metrics): a short
// networked market run with a live /metrics endpoint, scraped MID-RUN —
// while slots are still clearing — and again after completion. This is the
// end-to-end proof that the scrape surface is wired through the public API
// (registry → operator/market/proto handles → HTTP exposition) and is safe
// to read concurrently with a running market.
package spotdc_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"spotdc"
)

func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	return string(body)
}

func TestSmokeMetricsScrape(t *testing.T) {
	reg := spotdc.NewMetricsRegistry()
	addr, shutdown, err := spotdc.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	sc, err := spotdc.Testbed(spotdc.TestbedOptions{Seed: 7, Slots: 80})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *spotdc.NetResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := spotdc.NetRun(sc, spotdc.NetRunOptions{
			SlotLen:  20 * time.Millisecond,
			Registry: reg,
		})
		done <- outcome{res, err}
	}()

	// Mid-run scrape: poll until the operator has cleared at least one
	// slot but the run (80 slots ≈ 1.6 s) is still in flight.
	deadline := time.Now().Add(10 * time.Second)
	var midrun string
	for {
		if time.Now().After(deadline) {
			t.Fatal("operator never cleared a slot within 10s")
		}
		if v, ok := reg.Value("spotdc_operator_slots_total", "cleared"); ok && v >= 1 {
			midrun = scrape(t, addr)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, family := range []string{
		"spotdc_market_clears_total",
		"spotdc_market_clear_seconds_count",
		"spotdc_operator_slots_total",
		"spotdc_operator_spot_predicted_watts",
		"spotdc_proto_sessions_active",
		"spotdc_proto_bids_accepted_total",
	} {
		if !strings.Contains(midrun, family) {
			t.Errorf("mid-run scrape missing family %s", family)
		}
	}

	// /healthz answers while the market runs.
	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if string(hbody) != "ok\n" {
		t.Errorf("/healthz = %q mid-run", hbody)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Cleared != 80 {
		t.Errorf("cleared = %d, want 80", out.res.Cleared)
	}
	// Final scrape agrees with the run's own accounting.
	if v, ok := reg.Value("spotdc_operator_slots_total", "cleared"); !ok || int(v) != out.res.Cleared {
		t.Errorf("slots_total{cleared} = %v (ok=%v), want %d", v, ok, out.res.Cleared)
	}
}
